// Extension experiment: Gao relationship-inference accuracy.
//
// The paper consumes Gao's [18] AS-relationship inference as an input;
// with synthetic ground truth we can also *evaluate* it. This bench
// simulates BGP tables (valley-free paths from V vantage points to all
// destinations) and sweeps V, reporting inference agreement with the
// ground-truth annotation -- the curve flattens within a handful of
// vantage points, matching the folk wisdom that a few route-views peers
// see most of the relationship structure.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "policy/gao_inference.h"
#include "policy/paths.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  // Inference quality is the object here, not scale; a mid-sized AS graph
  // keeps the all-destination path extraction quick. The custom node count
  // flows into the session's content key, so this bench's artifacts never
  // collide with the shared roster's.
  core::SessionOptions opts = bench::SessionConfig();
  opts.roster.as_nodes = bench::ScaleName() == "small" ? 600 : 1500;
  core::Session session(opts);
  const core::Topology& as = session.Topology("AS");
  const auto& g = as.graph;

  std::printf("# Extension: Gao inference accuracy vs vantage points "
              "(scale=%s, AS n=%u)\n",
              bench::ScaleName().c_str(), g.num_nodes());
  core::PrintTableHeader(std::cout, {"VantagePts", "Paths", "Agreement"});

  double last = 0.0;
  for (const unsigned vantage_count : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::vector<std::vector<graph::NodeId>> paths;
    const graph::NodeId stride =
        std::max<graph::NodeId>(1, g.num_nodes() / vantage_count);
    for (graph::NodeId vp = 0; vp < g.num_nodes(); vp += stride) {
      for (graph::NodeId dst = 0; dst < g.num_nodes(); ++dst) {
        if (dst == vp) continue;
        auto p = policy::ExtractPolicyPath(g, as.relationship, vp, dst);
        if (p.size() >= 2) paths.push_back(std::move(p));
      }
    }
    const auto inferred = policy::InferRelationshipsFromPaths(g, paths);
    last = policy::RelationshipAgreement(as.relationship, inferred);
    core::PrintTableRow(std::cout,
                        {core::Num(static_cast<double>(vantage_count)),
                         core::Num(static_cast<double>(paths.size())),
                         core::Num(last, 4)});
  }
  std::printf("\n# Gao [18] reports >90%% verified accuracy on real data; "
              "final agreement here: %.1f%%\n",
              100.0 * last);
  return bench::Finish(last > 0.85 ? 0 : 1);
}
