// Figure 14 (Appendix D.2): link-value rank distributions of the PLRG
// variants (B-A, Brite, BT, Inet, PLRG) next to the measured networks.
//
// Paper shape: the variants' distributions fall off as quickly as the
// measured graphs' and top out in the same range -- all are "moderate"
// hierarchies.
#include <cstdio>
#include <iostream>

#include "core/report.h"
#include "linkvalue_common.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  std::printf("# Figure 14: link values of PLRG variants vs measured "
              "(scale=%s)\n",
              bench::ScaleName().c_str());

  std::vector<bench::AnalyzedTopology> variants;
  for (const char* id : {"B-A", "Brite", "BT", "Inet"}) {
    variants.push_back(bench::Analyze(session, id));
  }
  std::vector<metrics::Series> curves;
  for (const bench::AnalyzedTopology& t : variants) {
    metrics::Series s = t.plain->RankDistribution();
    s.name = t.name;
    curves.push_back(std::move(s));
  }
  core::PrintPanel(std::cout, "14a", "Link values, PLRG variants", curves);

  std::vector<bench::AnalyzedTopology> measured;
  measured.push_back(bench::AnalyzeRl(session));
  measured.push_back(bench::Analyze(session, "AS"));
  std::vector<metrics::Series> mcurves;
  for (const bench::AnalyzedTopology& t : measured) {
    metrics::Series s = t.plain->RankDistribution();
    s.name = t.name;
    mcurves.push_back(std::move(s));
    if (t.policy != nullptr) {
      metrics::Series p = t.policy->RankDistribution();
      p.name = t.name + "(Policy)";
      mcurves.push_back(std::move(p));
    }
  }
  core::PrintPanel(std::cout, "14b", "Link values, Measured", mcurves);

  std::printf("# Shape check: every variant classifies 'moderate' like "
              "the measured networks\n");
  bool ok = true;
  for (const bench::AnalyzedTopology& t : variants) {
    const auto c = hierarchy::ClassifyHierarchy(*t.plain);
    std::printf("#   %-6s %s\n", t.name.c_str(), hierarchy::ToString(c));
    ok &= c == hierarchy::HierarchyClass::kModerate;
  }
  for (const bench::AnalyzedTopology& t : measured) {
    const auto c = hierarchy::ClassifyHierarchy(*t.plain);
    std::printf("#   %-8s %s\n", t.name.c_str(), hierarchy::ToString(c));
    ok &= c == hierarchy::HierarchyClass::kModerate;
  }
  return bench::Finish(ok ? 0 : 1);
}
