// Extension experiment: the paper's footnote-22 auxiliary metrics.
//
// "We also tested many others ... including the average path length
// between any two nodes in a ball of size n, and the expected max-flow
// between the center of a ball of size n and any node on the surface of
// the ball. These metrics, too, do not contradict our findings but do
// not add to them either." This bench computes both and checks the
// claim: the groupings they induce agree with (a coarsening of) the
// three basic metrics' table.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "metrics/ball_extras.h"

int main(int argc, char** argv) {
  using namespace topogen;
  if (bench::HandleFlags(argc, argv)) return 0;
  core::Session& session = bench::Session();
  core::SuiteOptions so = bench::Suite();
  so.ball.max_centers = 10;
  so.ball.big_ball_centers = 3;
  std::printf("# Extension: footnote-22 ball metrics (scale=%s)\n",
              bench::ScaleName().c_str());

  std::vector<metrics::Series> path_curves, flow_curves;
  auto run = [&](const char* id) {
    const core::Topology& t = session.Topology(id);
    metrics::Series p = metrics::BallAveragePathSeries(t.graph, so.ball);
    p.name = t.name;
    path_curves.push_back(std::move(p));
    metrics::Series f = metrics::BallMaxFlowSeries(t.graph, so.ball);
    f.name = t.name;
    flow_curves.push_back(std::move(f));
  };
  for (const char* id :
       {"Tree", "Mesh", "Random", "TS", "Tiers", "PLRG", "AS"}) {
    run(id);
  }

  core::PrintPanel(std::cout, "ext-2a", "Average path length within balls",
                   path_curves);
  core::PrintPanel(std::cout, "ext-2b", "Center-to-surface max-flow",
                   flow_curves);

  // Consistency check: the max-flow metric is resilience-flavored. Use
  // the series *peak*: every graph's flow collapses toward 1 at the very
  // last radii (the final surface is the handful of most peripheral,
  // often degree-1, nodes), but mid-growth a resilient graph offers
  // multiple disjoint center-surface paths while a tree never does.
  // The discriminating power is weak -- the flow is bounded by the
  // center's own degree, and most centers in a heavy-tailed graph have
  // degree 1-2 -- which is presumably why the paper set the metric
  // aside. What MUST hold: a tree never has an alternate path (peak
  // exactly 1); every other topology shows one somewhere.
  std::printf("# Peak center-surface flow per topology (Tree = 1 exactly, "
              "others > 1):\n");
  bool ok = true;
  for (const metrics::Series& s : flow_curves) {
    double peak = 0.0;
    for (const double y : s.y) peak = std::max(peak, y);
    std::printf("#   %-8s %.2f\n", s.name.c_str(), peak);
    if (s.name == "Tree") {
      ok &= peak < 1.0 + 1e-9;
    } else {
      ok &= peak > 1.05;
    }
  }
  std::printf("# %s\n", ok ? "consistent with the basic metrics"
                           : "MISMATCH");
  return bench::Finish(ok ? 0 : 1);
}
