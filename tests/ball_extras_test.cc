#include "metrics/ball_extras.h"

#include <gtest/gtest.h>

#include "gen/canonical.h"
#include "gen/plrg.h"

namespace topogen::metrics {
namespace {

using graph::Graph;
using graph::Rng;

BallGrowingOptions FastBalls() {
  BallGrowingOptions o;
  o.max_centers = 6;
  o.big_ball_centers = 3;
  return o;
}

TEST(BallAveragePathTest, GrowsWithBallSize) {
  const Series s = BallAveragePathSeries(gen::Mesh(14, 14), FastBalls());
  ASSERT_GT(s.size(), 3u);
  EXPECT_GT(s.y.back(), s.y.front());
  // Average path within a ball of radius r is at most 2r; radius grows
  // one per series point.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LE(s.y[i], 2.0 * static_cast<double>(i + 1));
  }
}

TEST(BallAveragePathTest, CompleteGraphIsOne) {
  const Series s = BallAveragePathSeries(gen::Complete(20), FastBalls());
  ASSERT_FALSE(s.empty());
  EXPECT_NEAR(s.y[0], 1.0, 1e-9);
}

TEST(BallMaxFlowTest, TreeIsAlwaysOne) {
  // Every center-surface pair in a tree has exactly one path.
  const Series s = BallMaxFlowSeries(gen::KaryTree(3, 5), FastBalls());
  ASSERT_FALSE(s.empty());
  for (double y : s.y) EXPECT_NEAR(y, 1.0, 1e-9);
}

TEST(BallMaxFlowTest, RandomGraphExceedsTree) {
  // Mean degree ~8: comfortably above the connectivity threshold, so the
  // multiple-disjoint-paths claim holds with margin for any RNG stream
  // layout (the value sat within 0.01 of the 1.2 bound at degree ~6.4).
  Rng rng(1);
  const Graph g = gen::ErdosRenyi(800, 0.010, rng);
  const Series random_flow = BallMaxFlowSeries(g, FastBalls());
  ASSERT_FALSE(random_flow.empty());
  // The footnote-22 claim: consistent with resilience -- random graphs
  // offer multiple disjoint center-surface paths once balls are sizable.
  EXPECT_GT(random_flow.y.back(), 1.2);
}

TEST(HopPlotTest, MatchesExpansionScaling) {
  const Graph g = gen::Mesh(10, 10);
  const Series expansion = Expansion(g);
  const Series plot = HopPlot(g);
  ASSERT_EQ(expansion.size(), plot.size());
  const double n = static_cast<double>(g.num_nodes());
  for (std::size_t i = 0; i < plot.size(); ++i) {
    EXPECT_NEAR(plot.y[i], n * n * expansion.y[i], 1e-6);
  }
}

TEST(HopPlotExponentTest, MeshIsNearTwoRandomIsLarger) {
  // P(h) ~ h^2 for a mesh; an expander's hop plot rises much faster.
  const double mesh = HopPlotExponent(gen::Mesh(30, 30));
  EXPECT_NEAR(mesh, 2.0, 0.6);
  Rng rng(2);
  gen::PlrgParams p;
  p.n = 3000;
  const double plrg = HopPlotExponent(gen::Plrg(p, rng));
  EXPECT_GT(plrg, mesh + 0.8);
}

TEST(HopPlotExponentTest, LinearChainIsNearOne) {
  EXPECT_NEAR(HopPlotExponent(gen::Linear(400)), 1.0, 0.35);
}

}  // namespace
}  // namespace topogen::metrics
