// Tests for the extension modules: small-world generator, edge-list I/O,
// and multicast tree scaling.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/canonical.h"
#include "gen/plrg.h"
#include "gen/small_world.h"
#include "graph/components.h"
#include "graph/io.h"
#include "metrics/clustering.h"
#include "metrics/multicast.h"

namespace topogen {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

TEST(SmallWorldTest, ZeroRewireIsLattice) {
  Rng rng(1);
  const Graph g = gen::SmallWorld({.n = 100, .k = 4, .rewire_p = 0.0}, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 200u);
  EXPECT_EQ(g.count_degree(4), 100u);
  // Ring lattice with k=4 closes triangles: C = 0.5 exactly.
  EXPECT_NEAR(metrics::ClusteringCoefficient(g), 0.5, 1e-9);
}

TEST(SmallWorldTest, SmallRewireKeepsClusteringShortensPaths) {
  Rng a(2), b(2);
  const Graph lattice =
      gen::SmallWorld({.n = 600, .k = 6, .rewire_p = 0.0}, a);
  const Graph rewired =
      gen::SmallWorld({.n = 600, .k = 6, .rewire_p = 0.05}, b);
  // The Watts-Strogatz signature: paths collapse, clustering survives.
  EXPECT_LT(graph::AveragePathLength(rewired, 200),
            0.6 * graph::AveragePathLength(lattice, 200));
  EXPECT_GT(metrics::ClusteringCoefficient(rewired),
            0.5 * metrics::ClusteringCoefficient(lattice));
}

TEST(SmallWorldTest, FullRewireIsRandomish) {
  Rng rng(3);
  const Graph g = gen::SmallWorld({.n = 800, .k = 6, .rewire_p = 1.0}, rng);
  EXPECT_LT(metrics::ClusteringCoefficient(g), 0.05);
}

TEST(EdgeListIoTest, RoundTrip) {
  Rng rng(4);
  gen::PlrgParams p;
  p.n = 300;
  const Graph original = gen::Plrg(p, rng);
  std::stringstream buffer;
  graph::WriteEdgeList(buffer, original);
  const Graph loaded = graph::ReadEdgeList(buffer);
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.edges(), original.edges());
}

TEST(EdgeListIoTest, HeaderPreservesIsolatedNodes) {
  std::stringstream buffer;
  buffer << "# nodes 10 edges 1\n0 1\n";
  const Graph g = graph::ReadEdgeList(buffer);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer;
  buffer << "# a comment\n\n0 1\n# another\n1 2\n";
  const Graph g = graph::ReadEdgeList(buffer);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListIoTest, MalformedLineThrows) {
  std::stringstream buffer;
  buffer << "0 1\nbogus line\n";
  EXPECT_THROW(graph::ReadEdgeList(buffer), std::runtime_error);
}

TEST(EdgeListIoTest, FileRoundTrip) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "topogen_io_test.edges";
  const Graph g = gen::Mesh(6, 6);
  graph::WriteEdgeListFile(path.string(), g);
  const Graph loaded = graph::ReadEdgeListFile(path.string());
  EXPECT_EQ(loaded.edges(), g.edges());
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, MissingFileThrows) {
  EXPECT_THROW(graph::ReadEdgeListFile("/nonexistent/nowhere.edges"),
               std::runtime_error);
}

TEST(MulticastTest, SingleReceiverUsesPathLength) {
  const Graph g = gen::Linear(10);
  const std::vector<NodeId> receivers{9};
  EXPECT_EQ(metrics::MulticastTreeLinks(g, 0, receivers), 9u);
}

TEST(MulticastTest, SharedPrefixCountedOnce) {
  // Star of paths: receivers behind a shared chain reuse its links.
  //   0 - 1 - 2 - {3, 4}
  const Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {2, 4}});
  const std::vector<NodeId> receivers{3, 4};
  EXPECT_EQ(metrics::MulticastTreeLinks(g, 0, receivers), 4u);
}

TEST(MulticastTest, DuplicateReceiversCountOnce) {
  const Graph g = gen::Linear(6);
  const std::vector<NodeId> receivers{5, 5, 5};
  EXPECT_EQ(metrics::MulticastTreeLinks(g, 0, receivers), 5u);
}

TEST(MulticastTest, AllNodesGivesSpanningTree) {
  const Graph g = gen::Mesh(5, 5);
  std::vector<NodeId> receivers;
  for (NodeId v = 1; v < g.num_nodes(); ++v) receivers.push_back(v);
  EXPECT_EQ(metrics::MulticastTreeLinks(g, 0, receivers),
            g.num_nodes() - 1u);
}

TEST(MulticastTest, ScalingExponentNearChuangSirbuOnPlrg) {
  Rng rng(5);
  gen::PlrgParams p;
  p.n = 4000;
  const Graph g = gen::Plrg(p, rng);
  const double k = metrics::MulticastScalingExponent(g);
  // Phillips et al.: ~0.8 for Internet-like graphs; generous band.
  EXPECT_GT(k, 0.55);
  EXPECT_LT(k, 0.95);
}

TEST(MulticastTest, ScalingIsSublinear) {
  Rng rng(6);
  const Graph g = gen::ErdosRenyi(2000, 0.003, rng);
  const metrics::Series s = metrics::MulticastScaling(g);
  ASSERT_GT(s.size(), 3u);
  // L(m) grows, but slower than m.
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s.y[i], s.y[i - 1] * 0.95);
  }
  const double k = metrics::MulticastScalingExponent(g);
  EXPECT_LT(k, 1.0);
  EXPECT_GT(k, 0.3);
}

}  // namespace
}  // namespace topogen
