#include "metrics/classification.h"

#include <gtest/gtest.h>

#include "core/suite.h"
#include "gen/canonical.h"
#include "metrics/distortion.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"

namespace topogen::metrics {
namespace {

using graph::Graph;

// Reduced ball budget so unit tests stay fast; the full-scale table is
// exercised by roster_suite_test.cc and bench_fig2_classification.
BallGrowingOptions FastBalls() {
  BallGrowingOptions o;
  o.max_centers = 8;
  o.big_ball_centers = 3;
  return o;
}

LhSignature SignatureOf(const Graph& g) {
  const Series e = Expansion(g, {.max_sources = 500});
  const Series r = Resilience(g, FastBalls());
  const Series d = Distortion(g, FastBalls());
  return Classify(e, r, d);
}

TEST(ClassificationTest, TreeIsHLL) {
  EXPECT_EQ(SignatureOf(gen::KaryTree(3, 6)).ToString(), "HLL");
}

TEST(ClassificationTest, MeshIsLHH) {
  EXPECT_EQ(SignatureOf(gen::Mesh(30, 30)).ToString(), "LHH");
}

TEST(ClassificationTest, RandomIsHHH) {
  graph::Rng rng(1);
  EXPECT_EQ(SignatureOf(gen::ErdosRenyi(3000, 4.2 / 3000, rng)).ToString(),
            "HHH");
}

TEST(ClassificationTest, LinearChainIsLLL) {
  // Section 3.2.1's summary table: the chain is low on all three.
  EXPECT_EQ(SignatureOf(gen::Linear(600)).ToString(), "LLL");
}

TEST(ClassificationTest, CompleteGraphIsHHL) {
  // The paper's standout observation: only the complete graph shares the
  // measured Internet's HHL signature.
  EXPECT_EQ(SignatureOf(gen::Complete(64)).ToString(), "HHL");
}

TEST(ClassifyExpansionTest, SyntheticExponentialSeries) {
  Series s;
  for (int h = 1; h <= 12; ++h) {
    s.Add(h, std::min(1.0, 1e-4 * std::pow(2.5, h)));
  }
  EXPECT_EQ(ClassifyExpansion(s), Level::kHigh);
}

TEST(ClassifyExpansionTest, SyntheticQuadraticSeries) {
  Series s;
  for (int h = 1; h <= 40; ++h) {
    s.Add(h, std::min(1.0, 2.0 * h * h / 2000.0));
  }
  EXPECT_EQ(ClassifyExpansion(s), Level::kLow);
}

TEST(ClassifyExpansionTest, InstantExpanderIsHigh) {
  Series s;
  s.Add(1, 1.0);
  EXPECT_EQ(ClassifyExpansion(s), Level::kHigh);
}

TEST(ClassifyResilienceTest, FlatSeriesIsLow) {
  Series s;
  for (double n : {10.0, 100.0, 1000.0}) s.Add(n, 1.0);
  EXPECT_EQ(ClassifyResilience(s), Level::kLow);
}

TEST(ClassifyResilienceTest, SqrtGrowthIsHigh) {
  Series s;
  for (double n : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    s.Add(n, std::sqrt(n));
  }
  EXPECT_EQ(ClassifyResilience(s), Level::kHigh);
}

TEST(ClassifyResilienceTest, LinearGrowthIsHigh) {
  Series s;
  for (double n : {16.0, 64.0, 256.0, 1024.0}) s.Add(n, 0.5 * n);
  EXPECT_EQ(ClassifyResilience(s), Level::kHigh);
}

TEST(ClassifyDistortionTest, ConstantOneIsLow) {
  Series s;
  for (double n : {10.0, 100.0, 1000.0}) s.Add(n, 1.0);
  EXPECT_EQ(ClassifyDistortion(s), Level::kLow);
}

TEST(ClassifyDistortionTest, LogGrowthIsHigh) {
  Series s;
  for (double n : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    s.Add(n, 0.55 * std::log2(n));
  }
  EXPECT_EQ(ClassifyDistortion(s), Level::kHigh);
}

TEST(ClassifyDistortionTest, EmptySeriesIsLow) {
  EXPECT_EQ(ClassifyDistortion(Series{}), Level::kLow);
}

TEST(SignatureTest, ToStringFormat) {
  LhSignature sig{Level::kHigh, Level::kHigh, Level::kLow};
  EXPECT_EQ(sig.ToString(), "HHL");
}

}  // namespace
}  // namespace topogen::metrics
