// Property tests for policy-induced ball growing (Appendix E): the
// invariants that must hold for ANY annotated topology, swept across
// seeds and radii with parameterized tests.
#include <gtest/gtest.h>

#include <set>

#include "bfs_testutil.h"
#include "gen/measured.h"
#include "graph/bfs.h"
#include "policy/policy_ball.h"

namespace topogen::policy {
namespace {

using graph::Dist;
using graph::Graph;
using graph::NodeId;
using graph::Rng;

struct Fixture {
  gen::AsTopology as;
  explicit Fixture(std::uint64_t seed) {
    Rng rng(seed);
    gen::MeasuredAsParams p;
    p.n = 400;
    as = gen::MeasuredAs(p, rng);
  }
};

class PolicyBallSweep : public ::testing::TestWithParam<int> {};

TEST_P(PolicyBallSweep, BallIsSubsetOfPlainBall) {
  const Fixture f(GetParam());
  const Graph& g = f.as.graph;
  const NodeId center = static_cast<NodeId>(GetParam() * 31 % g.num_nodes());
  for (const Dist r : {Dist{1}, Dist{2}, Dist{3}, Dist{4}}) {
    const auto plain = graph::testutil::Ball(g, center, r);
    const std::set<NodeId> plain_set(plain.begin(), plain.end());
    const PolicyBall ball = GrowPolicyBall(g, f.as.relationship, center, r);
    for (const NodeId orig : ball.subgraph.original_id) {
      EXPECT_TRUE(plain_set.count(orig))
          << "policy ball node " << orig << " outside plain ball (r=" << r
          << ")";
    }
  }
}

TEST_P(PolicyBallSweep, MonotoneInRadius) {
  const Fixture f(GetParam());
  const Graph& g = f.as.graph;
  const NodeId center = static_cast<NodeId>(GetParam() * 53 % g.num_nodes());
  std::size_t prev_nodes = 0, prev_edges = 0;
  for (Dist r = 1; r <= 5; ++r) {
    const PolicyBall ball = GrowPolicyBall(g, f.as.relationship, center, r);
    EXPECT_GE(ball.subgraph.graph.num_nodes(), prev_nodes);
    EXPECT_GE(ball.subgraph.graph.num_edges(), prev_edges);
    prev_nodes = ball.subgraph.graph.num_nodes();
    prev_edges = ball.subgraph.graph.num_edges();
  }
}

TEST_P(PolicyBallSweep, DistancesMatchPolicyBfs) {
  const Fixture f(GetParam());
  const Graph& g = f.as.graph;
  const NodeId center = static_cast<NodeId>(GetParam() * 97 % g.num_nodes());
  const auto reference = PolicyDistances(g, f.as.relationship, center);
  const PolicyBall ball = GrowPolicyBall(g, f.as.relationship, center, 3);
  for (std::size_t i = 0; i < ball.subgraph.original_id.size(); ++i) {
    EXPECT_EQ(ball.policy_dist[i], reference[ball.subgraph.original_id[i]]);
    EXPECT_LE(ball.policy_dist[i], 3u);
  }
}

TEST_P(PolicyBallSweep, BallSubgraphIsConnectedThroughCenter) {
  const Fixture f(GetParam());
  const Graph& g = f.as.graph;
  const NodeId center = static_cast<NodeId>(GetParam() * 7 % g.num_nodes());
  const PolicyBall ball = GrowPolicyBall(g, f.as.relationship, center, 4);
  // Every included node must be reachable from the center *inside* the
  // ball subgraph (links on policy paths are included by construction).
  NodeId center_local = graph::kInvalidNode;
  for (std::size_t i = 0; i < ball.subgraph.original_id.size(); ++i) {
    if (ball.subgraph.original_id[i] == center) {
      center_local = static_cast<NodeId>(i);
    }
  }
  ASSERT_NE(center_local, graph::kInvalidNode);
  const auto dist =
      graph::testutil::BfsDistances(ball.subgraph.graph, center_local);
  for (std::size_t i = 0; i < dist.size(); ++i) {
    EXPECT_NE(dist[i], graph::kUnreachable) << "island node in policy ball";
  }
}

TEST_P(PolicyBallSweep, InBallHopsNeverBeatPolicyDistance) {
  // The ball keeps only policy-compliant links, so plain hops inside the
  // ball can't undercut the policy distance (they could only match it).
  const Fixture f(GetParam());
  const Graph& g = f.as.graph;
  const NodeId center = static_cast<NodeId>(GetParam() * 11 % g.num_nodes());
  const PolicyBall ball = GrowPolicyBall(g, f.as.relationship, center, 4);
  NodeId center_local = graph::kInvalidNode;
  for (std::size_t i = 0; i < ball.subgraph.original_id.size(); ++i) {
    if (ball.subgraph.original_id[i] == center) {
      center_local = static_cast<NodeId>(i);
    }
  }
  ASSERT_NE(center_local, graph::kInvalidNode);
  const auto hops =
      graph::testutil::BfsDistances(ball.subgraph.graph, center_local);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    // Equality holds on the policy shortest paths themselves; shortcuts
    // made of mixed path fragments can exist but never go BELOW, because
    // a shorter in-ball walk would itself be a shorter policy-compliant
    // path... which contradicts the BFS optimum only if valley-free --
    // so allow <= with a generous check: hops can be less than or equal.
    EXPECT_LE(hops[i], ball.policy_dist[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyBallSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace topogen::policy
