// Tests for the observability subsystem (src/obs): resolve-once env
// config, span nesting and early close, counter thread-safety, trace and
// stats emission validity, and the manifest's exact RosterOptions
// round-trip.
//
// Every test that flips TOPOGEN_* environment variables goes through
// ObsEnvTest, whose TearDown restores the all-unset default so the rest
// of the binary keeps running with observability off.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/roster.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace topogen::obs {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const fs::path& p) {
  std::ifstream is(p);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

class ObsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "topogen_obs_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ClearEnv();
  }

  void TearDown() override {
    ClearEnv();
    fs::remove_all(dir_);
  }

  // Unsets every TOPOGEN_* variable, re-resolves Env, and clears all
  // recorded observability state.
  void ClearEnv() {
    ::unsetenv("TOPOGEN_SCALE");
    ::unsetenv("TOPOGEN_TRACE");
    ::unsetenv("TOPOGEN_STATS");
    ::unsetenv("TOPOGEN_OUTDIR");
    ::unsetenv("TOPOGEN_HIST");
    ::unsetenv("TOPOGEN_EVENTS");
    ::unsetenv("TOPOGEN_SERVICE_QUEUE");
    Env::ResetForTesting();
    Tracer::Get().DiscardForTesting();
    EventLog::Get().ResetForTesting();
    Stats::ResetForTesting();
    Manifest::ResetForTesting();
  }

  void SetEnv(const char* name, const std::string& value) {
    ::setenv(name, value.c_str(), 1);
    Env::ResetForTesting();
  }

  fs::path dir_;
};

// --- Env -------------------------------------------------------------

TEST_F(ObsEnvTest, ResolvesOnceUntilReset) {
  SetEnv("TOPOGEN_SCALE", "small");
  EXPECT_EQ(Env::Get().scale(), "small");
  // Later environment changes are invisible until an explicit re-resolve.
  ::setenv("TOPOGEN_SCALE", "full", 1);
  EXPECT_EQ(Env::Get().scale(), "small");
  Env::ResetForTesting();
  EXPECT_EQ(Env::Get().scale(), "full");
}

TEST_F(ObsEnvTest, DefaultsWhenUnset) {
  EXPECT_EQ(Env::Get().scale(), "default");
  EXPECT_FALSE(Env::Get().trace_enabled());
  EXPECT_FALSE(Env::Get().stats_enabled());
  EXPECT_FALSE(Env::Get().outdir_set());
  EXPECT_FALSE(AnyEnabled());
}

TEST_F(ObsEnvTest, FlagsTrackEnv) {
  SetEnv("TOPOGEN_TRACE", (dir_ / "t.json").string());
  EXPECT_TRUE(TraceEnabled());
  EXPECT_FALSE(StatsEnabled());
  EXPECT_TRUE(AnyEnabled());
  SetEnv("TOPOGEN_STATS", (dir_ / "s.txt").string());
  EXPECT_TRUE(StatsEnabled());
  SetEnv("TOPOGEN_OUTDIR", dir_.string());
  EXPECT_TRUE(ManifestEnabled());
}

TEST_F(ObsEnvTest, ServiceQueueZeroFallsBackToTheDefault) {
  EXPECT_EQ(Env::Get().service_queue(), 64);
  // A 0-depth queue would reject every non-deduped request, so 0 is an
  // unusable value and falls back like garbage does.
  SetEnv("TOPOGEN_SERVICE_QUEUE", "0");
  EXPECT_EQ(Env::Get().service_queue(), 64);
  SetEnv("TOPOGEN_SERVICE_QUEUE", "1");
  EXPECT_EQ(Env::Get().service_queue(), 1);
  SetEnv("TOPOGEN_SERVICE_QUEUE", "128");
  EXPECT_EQ(Env::Get().service_queue(), 128);
}

// --- Spans -----------------------------------------------------------

TEST_F(ObsEnvTest, SpansInactiveWhenDisabled) {
  Span span("test.disabled_span");
  EXPECT_FALSE(span.active());
  span.Arg("k", std::uint64_t{1});  // must be safe on an inactive span
  span.End();
  EXPECT_EQ(Tracer::Get().EventCountForTesting(), 0u);
}

TEST_F(ObsEnvTest, SpansNestAndClose) {
  SetEnv("TOPOGEN_TRACE", (dir_ / "t.json").string());
  {
    Span outer("test.outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner("test.inner");
      EXPECT_TRUE(inner.active());
    }
    // Inner closed, outer still open: exactly one event so far.
    EXPECT_EQ(Tracer::Get().EventCountForTesting(), 1u);
    EXPECT_TRUE(outer.active());
  }
  EXPECT_EQ(Tracer::Get().EventCountForTesting(), 2u);
}

TEST_F(ObsEnvTest, SpanClosesOnEarlyReturn) {
  SetEnv("TOPOGEN_TRACE", (dir_ / "t.json").string());
  const auto work = [](bool bail) {
    Span span("test.early_return");
    if (bail) return;  // destructor must still record the span
    span.Arg("reached", std::uint64_t{1});
  };
  work(true);
  EXPECT_EQ(Tracer::Get().EventCountForTesting(), 1u);
}

TEST_F(ObsEnvTest, ExplicitEndIsIdempotent) {
  SetEnv("TOPOGEN_TRACE", (dir_ / "t.json").string());
  {
    Span span("test.end_twice");
    span.End();
    EXPECT_FALSE(span.active());
    span.End();  // second close is a no-op; destructor adds nothing either
  }
  EXPECT_EQ(Tracer::Get().EventCountForTesting(), 1u);
}

TEST_F(ObsEnvTest, SpansFeedTimerAggregates) {
  // Stats-only configuration: no trace buffering, but finished spans must
  // still show up as timer samples (the manifest's phase durations).
  SetEnv("TOPOGEN_STATS", (dir_ / "s.txt").string());
  { Span span("test.timed_phase"); }
  { Span span("test.timed_phase"); }
  EXPECT_EQ(Tracer::Get().EventCountForTesting(), 0u);
  bool found = false;
  for (const TimerSnapshot& t : Stats::TimerSnapshots()) {
    if (t.name == "test.timed_phase") {
      found = true;
      EXPECT_EQ(t.count, 2u);
      // min/max bracket the samples and the total.
      EXPECT_LE(t.min_ns, t.max_ns);
      EXPECT_LE(t.max_ns, t.total_ns);
      EXPECT_LE(t.min_ns + t.max_ns, t.total_ns);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsEnvTest, TimerMinMaxTrackExtremes) {
  SetEnv("TOPOGEN_STATS", (dir_ / "s.txt").string());
  Stats::AddTimerSample("test.extremes", 500);
  Stats::AddTimerSample("test.extremes", 20);
  Stats::AddTimerSample("test.extremes", 90);
  for (const TimerSnapshot& t : Stats::TimerSnapshots()) {
    if (t.name != "test.extremes") continue;
    EXPECT_EQ(t.min_ns, 20u);
    EXPECT_EQ(t.max_ns, 500u);
    EXPECT_EQ(t.total_ns, 610u);
  }
  // Both dump formats carry the new columns.
  std::ostringstream json;
  Stats::DumpJson(json);
  const std::optional<Json> doc = Json::Parse(json.str());
  ASSERT_TRUE(doc.has_value());
  const Json* timers = doc->Find("timers");
  ASSERT_NE(timers, nullptr);
  ASSERT_TRUE(timers->is_array());
  const Json* timer = nullptr;
  for (const Json& entry : timers->AsArray()) {
    if (entry.Find("name")->AsString() == "test.extremes") timer = &entry;
  }
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->Find("min_ms")->AsDouble(), 20.0 / 1e6);
  EXPECT_EQ(timer->Find("max_ms")->AsDouble(), 500.0 / 1e6);
  std::ostringstream text;
  Stats::DumpText(text);
  EXPECT_NE(text.str().find("min_ms"), std::string::npos);
  EXPECT_NE(text.str().find("max_ms"), std::string::npos);
}

// --- Counters --------------------------------------------------------

TEST_F(ObsEnvTest, CountMacroDisabledRegistersNothing) {
  TOPOGEN_COUNT("test.never_registered");
  for (const auto& [name, v] : Stats::CounterSnapshot()) {
    EXPECT_NE(name, "test.never_registered");
  }
}

TEST_F(ObsEnvTest, ConcurrentCounterBumpsAreExact) {
  SetEnv("TOPOGEN_STATS", (dir_ / "s.txt").string());
  constexpr int kThreads = 8;
  constexpr int kBumpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kBumpsPerThread; ++i) {
        TOPOGEN_COUNT("test.concurrent");
        TOPOGEN_COUNT_N("test.concurrent_n", 3);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(Stats::GetCounter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kBumpsPerThread);
  EXPECT_EQ(Stats::GetCounter("test.concurrent_n").value(),
            static_cast<std::uint64_t>(kThreads) * kBumpsPerThread * 3);
}

TEST_F(ObsEnvTest, GaugeMaxKeepsHighWaterMark) {
  SetEnv("TOPOGEN_STATS", (dir_ / "s.txt").string());
  Gauge& g = Stats::GetGauge("test.hwm");
  g.Max(5);
  g.Max(3);
  EXPECT_EQ(g.value(), 5);
  g.Max(9);
  EXPECT_EQ(g.value(), 9);
}

// --- Emission --------------------------------------------------------

TEST_F(ObsEnvTest, TraceOutputIsValidChromeTraceJson) {
  const fs::path trace = dir_ / "t.json";
  SetEnv("TOPOGEN_TRACE", trace.string());
  {
    Span span("test.emit \"quoted\\name\"");
    span.Arg("topology", std::string_view("PL\"RG"))
        .Arg("nodes", std::uint64_t{10000})
        .Arg("ratio", 15.6);
  }
  ASSERT_TRUE(Tracer::Get().FlushForTesting());
  const std::optional<Json> doc = Json::Parse(ReadFile(trace));
  ASSERT_TRUE(doc.has_value());
  const Json* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Metadata event + the span.
  ASSERT_EQ(events->AsArray().size(), 2u);
  const Json& meta = events->AsArray()[0];
  EXPECT_EQ(meta.Find("ph")->AsString(), "M");
  const Json& span_ev = events->AsArray()[1];
  EXPECT_EQ(span_ev.Find("ph")->AsString(), "X");
  EXPECT_EQ(span_ev.Find("name")->AsString(), "test.emit \"quoted\\name\"");
  EXPECT_GE(span_ev.Find("dur")->AsDouble(), 0.0);
  const Json* args = span_ev.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("topology")->AsString(), "PL\"RG");
  EXPECT_EQ(args->Find("nodes")->AsDouble(), 10000.0);
  EXPECT_EQ(args->Find("ratio")->AsDouble(), 15.6);
}

TEST_F(ObsEnvTest, StatsDumpJsonParses) {
  SetEnv("TOPOGEN_STATS", (dir_ / "s.txt").string());
  TOPOGEN_COUNT_N("test.parse_me", 7);
  { Span span("test.parse_phase"); }
  std::ostringstream os;
  Stats::DumpJson(os);
  const std::optional<Json> doc = Json::Parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const Json* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("test.parse_me")->AsDouble(), 7.0);
  ASSERT_NE(doc->Find("timers"), nullptr);
  ASSERT_NE(doc->Find("wall_time_s"), nullptr);
}

TEST_F(ObsEnvTest, StatsPathSemantics) {
  // Plain path: text at <path>, JSON alongside at <path>.json.
  const fs::path text = dir_ / "stats.txt";
  SetEnv("TOPOGEN_STATS", text.string());
  TOPOGEN_COUNT("test.path_semantics");
  ASSERT_TRUE(Stats::WriteConfigured());
  EXPECT_TRUE(fs::exists(text));
  EXPECT_TRUE(fs::exists(dir_ / "stats.txt.json"));
  EXPECT_NE(ReadFile(text).find("test.path_semantics"), std::string::npos);
  ASSERT_TRUE(Json::Parse(ReadFile(dir_ / "stats.txt.json")).has_value());

  // *.json path: JSON only.
  const fs::path json_only = dir_ / "only.json";
  SetEnv("TOPOGEN_STATS", json_only.string());
  ASSERT_TRUE(Stats::WriteConfigured());
  EXPECT_TRUE(fs::exists(json_only));
  EXPECT_FALSE(fs::exists(dir_ / "only.json.json"));
  ASSERT_TRUE(Json::Parse(ReadFile(json_only)).has_value());
}

TEST_F(ObsEnvTest, NoArtifactsWhenEnvUnset) {
  // All TOPOGEN_* unset (fixture default): instrumentation must leave no
  // trace -- no buffered events, no registered names, no files written.
  { Span span("test.ghost"); }
  TOPOGEN_COUNT("test.ghost_counter");
  EXPECT_EQ(Tracer::Get().EventCountForTesting(), 0u);
  for (const auto& [name, v] : Stats::CounterSnapshot()) {
    EXPECT_NE(name, "test.ghost_counter");
  }
  for (const TimerSnapshot& t : Stats::TimerSnapshots()) {
    EXPECT_NE(t.name, "test.ghost");
  }
  EXPECT_TRUE(Tracer::Get().WriteConfigured());  // success no-op
  EXPECT_TRUE(Stats::WriteConfigured());         // success no-op
  EXPECT_TRUE(fs::is_empty(dir_));
}

// --- Manifest --------------------------------------------------------

TEST_F(ObsEnvTest, ManifestRoundTripsRosterOptions) {
  SetEnv("TOPOGEN_OUTDIR", dir_.string());
  core::RosterOptions ro;
  ro.seed = 0x00DEADBEEFCAFEull;
  ro.as_nodes = 10941;
  ro.rl_expansion_ratio = 15.6;  // not exactly representable in binary
  ro.plrg_nodes = 9973;
  ro.degree_based_nodes = 8191;
  core::RecordRunConfiguration(ro);

  const fs::path path = dir_ / "manifest.json";
  ASSERT_TRUE(Manifest::WriteTo(path.string()));
  const std::optional<Json> doc = Json::Parse(ReadFile(path));
  ASSERT_TRUE(doc.has_value());
  const Json* roster = doc->Find("roster");
  ASSERT_NE(roster, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(roster->Find("seed")->AsDouble()),
            ro.seed);
  EXPECT_EQ(static_cast<std::uint64_t>(roster->Find("as_nodes")->AsDouble()),
            ro.as_nodes);
  // Exact: JsonNumber emits the shortest round-trip form, so the re-parsed
  // double must be bit-identical, not just close.
  EXPECT_EQ(roster->Find("rl_expansion_ratio")->AsDouble(),
            ro.rl_expansion_ratio);
  EXPECT_EQ(
      static_cast<std::uint64_t>(roster->Find("plrg_nodes")->AsDouble()),
      ro.plrg_nodes);
  EXPECT_EQ(static_cast<std::uint64_t>(
                roster->Find("degree_based_nodes")->AsDouble()),
            ro.degree_based_nodes);
  EXPECT_EQ(doc->Find("schema")->AsString(), "topogen-manifest/1");
}

TEST_F(ObsEnvTest, ManifestRecordsTopologiesAndFigures) {
  SetEnv("TOPOGEN_OUTDIR", dir_.string());
  Manifest::AddTopology("Tree", 1093, 1092, "k=3, D=6");
  Manifest::AddTopology("Tree", 1093, 1092, "k=3, D=6");  // overwrite, no dup
  Manifest::AddFigure("2a", "Expansion, Canonical");
  const fs::path path = dir_ / "manifest.json";
  ASSERT_TRUE(Manifest::WriteTo(path.string()));
  const std::optional<Json> doc = Json::Parse(ReadFile(path));
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->Find("topologies")->AsArray().size(), 1u);
  const Json& tree = doc->Find("topologies")->AsArray()[0];
  EXPECT_EQ(tree.Find("name")->AsString(), "Tree");
  EXPECT_EQ(tree.Find("nodes")->AsDouble(), 1093.0);
  ASSERT_EQ(doc->Find("figures")->AsArray().size(), 1u);
  EXPECT_EQ(doc->Find("figures")->AsArray()[0].Find("id")->AsString(), "2a");
}

TEST_F(ObsEnvTest, ManifestRecordersNoOpWithoutOutdir) {
  Manifest::AddTopology("Ghost", 1, 1, "");
  Manifest::AddFigure("9z", "Ghost");
  SetEnv("TOPOGEN_OUTDIR", dir_.string());  // enable only for the write
  const fs::path path = dir_ / "manifest.json";
  ASSERT_TRUE(Manifest::WriteTo(path.string()));
  const std::optional<Json> doc = Json::Parse(ReadFile(path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->Find("topologies")->AsArray().empty());
  EXPECT_TRUE(doc->Find("figures")->AsArray().empty());
}

// --- Json ------------------------------------------------------------

TEST(ObsJsonTest, ParsesEscapesAndRejectsGarbage) {
  const auto doc = Json::Parse(
      R"({"s": "a\"b\\cA", "n": -2.5e-3, "a": [true, false, null]})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("s")->AsString(), "a\"b\\cA");
  EXPECT_EQ(doc->Find("n")->AsDouble(), -2.5e-3);
  ASSERT_EQ(doc->Find("a")->AsArray().size(), 3u);
  EXPECT_TRUE(doc->Find("a")->AsArray()[2].is_null());
  EXPECT_FALSE(Json::Parse("{").has_value());
  EXPECT_FALSE(Json::Parse("{} trailing").has_value());
  EXPECT_FALSE(Json::Parse("{\"k\": }").has_value());
}

TEST(ObsJsonTest, JsonNumberRoundTripsExactly) {
  for (const double v : {15.6, 0.1, 1.0 / 3.0, 2.5e-7, 1e300, -0.0008}) {
    const std::string s = JsonNumber(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(ObsJsonTest, EscapeHandlesEveryByteClass) {
  // Named escapes for the JSON-special characters...
  EXPECT_EQ(JsonEscape("\"\\"), "\\\"\\\\");
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  // ...\u00xx for the remaining control range (both edges)...
  EXPECT_EQ(JsonEscape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonEscape(std::string_view("\0", 1)), "\\u0000");
  // ...and pass-through for everything printable, DEL, and UTF-8
  // multibyte sequences (the escaper is byte-oriented; it must never
  // split or mangle a multibyte code point).
  EXPECT_EQ(JsonEscape("plain ~ text"), "plain ~ text");
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
  EXPECT_EQ(JsonEscape("na\xc3\xafve \xe2\x86\x92 graph"),
            "na\xc3\xafve \xe2\x86\x92 graph");
}

TEST(ObsJsonTest, EscapedStringsRoundTripThroughTheParser) {
  // Event-log and trace emitters write "\"" + JsonEscape(s) + "\""; the
  // parser must recover the original bytes for any payload, including
  // embedded newlines (one-record-per-line logs depend on this).
  const std::string nasty =
      std::string("line1\nline2\t\"quoted\\path\" \x01") + "\xc3\xa9" +
      std::string("\0tail", 5);
  const std::string doc = "{\"k\": \"" + JsonEscape(nasty) + "\"}";
  EXPECT_EQ(doc.find('\n'), std::string::npos);
  const std::optional<Json> parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("k")->AsString(), nasty);
}

TEST(ObsJsonTest, ParserDecodesUnicodeEscapes) {
  const auto doc = Json::Parse("{\"a\": \"\\u0041\", \"e\": \"\\u00e9\"}");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->Find("a")->AsString(), "A");
  EXPECT_EQ(doc->Find("e")->AsString(), "\xc3\xa9");  // UTF-8 re-encode
}

}  // namespace
}  // namespace topogen::obs
