// Golden-equivalence tests for the million-node scale work: the radix
// CSR build, the parallelized generators, the frontier-bitmap BFS mode,
// and the sampled estimators (metrics/sample.h).
//
// Everything here checks an *equivalence*, not a property: the fast path
// must reproduce the slow path bit-for-bit (construction, generation,
// traversal) or land inside its own reported confidence interval
// (estimators). These are the contracts docs/PERFORMANCE.md promises.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "gen/ba.h"
#include "gen/degree_seq.h"
#include "gen/plrg.h"
#include "gen/waxman.h"
#include "graph/bfs.h"
#include "graph/bfs_scratch.h"
#include "graph/graph.h"
#include "graph/rng.h"
#include "metrics/ball.h"
#include "metrics/expansion.h"
#include "metrics/sample.h"
#include "parallel/pool.h"

namespace topogen {
namespace {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

// Reference edge canonicalization: what FromEdges must be equivalent to,
// written the obvious way (std::sort + std::unique).
std::vector<Edge> ReferenceCanonical(std::vector<Edge> edges) {
  std::vector<Edge> out;
  for (Edge e : edges) {
    if (e.u == e.v) continue;
    if (e.u > e.v) std::swap(e.u, e.v);
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void ExpectMatchesReference(NodeId n, std::vector<Edge> edges) {
  const std::vector<Edge> want = ReferenceCanonical(edges);
  const Graph g = Graph::FromEdges(n, std::move(edges));
  ASSERT_EQ(g.num_nodes(), n);
  ASSERT_EQ(g.edges(), want);
  // The CSR adjacency must be exactly the sorted-neighbor view of the
  // canonical edge list.
  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : want) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  for (NodeId u = 0; u < n; ++u) {
    std::sort(adj[u].begin(), adj[u].end());
    const std::span<const NodeId> got = g.neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()), adj[u])
        << "node " << u;
  }
}

TEST(RadixFromEdges, EmptyAndTiny) {
  ExpectMatchesReference(0, {});
  ExpectMatchesReference(5, {});
  ExpectMatchesReference(2, {{0, 1}});
  ExpectMatchesReference(2, {{1, 0}});  // reversed endpoint order
}

TEST(RadixFromEdges, DuplicatesSelfLoopsAndComponents) {
  // Multi-component with duplicates (both orientations) and self-loops.
  ExpectMatchesReference(8, {{3, 2},
                             {2, 3},
                             {0, 1},
                             {1, 1},
                             {6, 7},
                             {7, 6},
                             {4, 4},
                             {0, 1},
                             {5, 6}});
}

TEST(RadixFromEdges, RandomSoupMatchesReference) {
  // Enough nodes that the per-digit counting sort exercises both passes
  // with non-trivial high words, plus heavy duplication.
  graph::Rng rng(99);
  constexpr NodeId kNodes = 70000;
  std::vector<Edge> edges;
  for (int i = 0; i < 200000; ++i) {
    const auto u = static_cast<NodeId>(rng.NextIndex(kNodes));
    const auto v = static_cast<NodeId>(rng.NextIndex(kNodes));
    edges.push_back({u, v});
  }
  ExpectMatchesReference(kNodes, std::move(edges));
}

// --- parallel generators: bit-identical at any thread count -----------

class PoolThreads {
 public:
  explicit PoolThreads(int threads) {
    parallel::Pool::SetThreadCountForTesting(threads);
  }
  ~PoolThreads() { parallel::Pool::SetThreadCountForTesting(0); }
};

// Each generator runs once per thread count, above the parallel-dispatch
// threshold, and must emit the identical graph: same edge list, byte for
// byte (docs/PARALLELISM.md determinism contract).
TEST(ParallelGenerators, ThreadCountInvariant) {
  constexpr NodeId kNodes = gen::kParallelGenNodeThreshold + 5000;
  std::vector<std::vector<Edge>> plrg, ba, waxman;
  for (const int threads : {1, 2, 7}) {
    PoolThreads scope(threads);
    {
      graph::Rng rng(7);
      plrg.push_back(gen::Plrg({.n = kNodes}, rng).edges());
    }
    {
      graph::Rng rng(7);
      ba.push_back(gen::BarabasiAlbert({.n = kNodes}, rng).edges());
    }
    {
      graph::Rng rng(7);
      waxman.push_back(
          gen::Waxman({.n = kNodes,
                       .alpha = 25.0 / static_cast<double>(kNodes)},
                      rng)
              .edges());
    }
  }
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(plrg[0], plrg[i]) << "PLRG diverged at thread variant " << i;
    EXPECT_EQ(ba[0], ba[i]) << "BA diverged at thread variant " << i;
    EXPECT_EQ(waxman[0], waxman[i])
        << "Waxman diverged at thread variant " << i;
  }
  EXPECT_GT(plrg[0].size(), 0u);
  EXPECT_GT(ba[0].size(), 0u);
  EXPECT_GT(waxman[0].size(), 0u);
}

// --- frontier-bitmap BFS: distances equal a plain queue BFS -----------

TEST(BitmapBfs, MatchesReferenceBfsAboveGate) {
  // A PLRG well above the 16384-node bitmap gate: the middle levels are
  // huge, so the direction-optimizing sweep takes the bottom-up bitmap
  // branch on at least one level. Distances must still be exact.
  graph::Rng rng(13);
  const Graph g = gen::Plrg({.n = 30000}, rng);
  ASSERT_GT(g.num_nodes(), 16384u);

  const NodeId src = 17;
  std::vector<graph::Dist> want(g.num_nodes(), graph::kUnreachable);
  std::queue<NodeId> q;
  want[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : g.neighbors(u)) {
      if (want[v] == graph::kUnreachable) {
        want[v] = want[u] + 1;
        q.push(v);
      }
    }
  }

  graph::BfsScratchLease scratch = graph::AcquireBfsScratch();
  graph::BfsDistancesInto(g, src, *scratch);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(scratch->dist(v), want[v]) << "node " << v;
  }
}

// --- early-exit budget: level-granular, deterministic -----------------

TEST(BudgetedSweep, LevelGranularCutIsDeterministic) {
  graph::Rng rng(21);
  const Graph g = gen::Plrg({.n = 8000}, rng);
  const NodeId src = 3;

  graph::BfsScratchLease full = graph::AcquireBfsScratch();
  graph::BfsDistancesInto(g, src, *full);
  const std::vector<std::size_t> full_levels(full->level_counts().begin(),
                                             full->level_counts().end());
  const std::size_t budget = full->reached() / 3;
  ASSERT_GT(budget, 0u);

  graph::BfsScratchLease cut = graph::AcquireBfsScratch();
  graph::BfsDistancesInto(g, src, *cut, graph::kUnreachable, budget);

  // The budgeted sweep visits a whole-level prefix of the full sweep:
  // its level counts are a prefix of the full ones, and it stopped at
  // the first level where the running total reached the budget.
  const std::span<const std::size_t> cut_levels = cut->level_counts();
  ASSERT_LE(cut_levels.size(), full_levels.size());
  std::size_t total = 0;
  for (std::size_t h = 0; h < cut_levels.size(); ++h) {
    ASSERT_EQ(cut_levels[h], full_levels[h]) << "level " << h;
    total += cut_levels[h];
  }
  EXPECT_EQ(total, cut->reached());
  EXPECT_GE(total, budget);
  if (cut_levels.size() >= 2) {
    std::size_t before_last = total - cut_levels.back();
    EXPECT_LT(before_last, budget)
        << "sweep kept expanding past the budget level";
  }

  // Same budget, different thread count: identical visited set.
  PoolThreads scope(7);
  graph::BfsScratchLease again = graph::AcquireBfsScratch();
  graph::BfsDistancesInto(g, src, *again, graph::kUnreachable, budget);
  ASSERT_EQ(again->reached(), cut->reached());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_EQ(again->dist(v), cut->dist(v)) << "node " << v;
  }
}

// --- sampled estimators: inside their own confidence interval ---------

TEST(SampledExpansion, ReproducesExhaustiveWithinCi) {
  graph::Rng rng(5);
  const Graph g = gen::Plrg({.n = 10000}, rng);

  metrics::ExpansionOptions exhaustive;
  exhaustive.max_sources = g.num_nodes();  // every node is a source
  const metrics::Series exact = metrics::Expansion(g, exhaustive);
  ASSERT_FALSE(exact.has_error());  // inactive spec: no yerr column

  metrics::ExpansionOptions sampled_opts;
  sampled_opts.sample = {.centers = 96, .seed = 3, .expansion_budget = 0};
  const metrics::Series sampled = metrics::Expansion(g, sampled_opts);
  ASSERT_TRUE(sampled.has_error());
  ASSERT_FALSE(sampled.y.empty());

  // Every sampled radius present in the exact series must land within
  // the sampled estimator's own reported 95% CI half-width (plus a tiny
  // slack for radii where the half-width collapses to ~0).
  std::size_t compared = 0;
  for (std::size_t i = 0; i < sampled.x.size(); ++i) {
    for (std::size_t j = 0; j < exact.x.size(); ++j) {
      if (exact.x[j] != sampled.x[i]) continue;
      const double diff = std::abs(sampled.y[i] - exact.y[j]);
      EXPECT_LE(diff, sampled.yerr[i] + 1e-3)
          << "radius " << sampled.x[i] << ": sampled " << sampled.y[i]
          << " vs exact " << exact.y[j] << " ci " << sampled.yerr[i];
      ++compared;
    }
  }
  EXPECT_GE(compared, 3u);

  // Same spec, same seed: the estimator itself is deterministic.
  const metrics::Series again = metrics::Expansion(g, sampled_opts);
  EXPECT_EQ(again.y, sampled.y);
  EXPECT_EQ(again.yerr, sampled.yerr);
}

TEST(SampledBall, CarriesNonDegenerateCi) {
  graph::Rng rng(5);
  const Graph g = gen::Plrg({.n = 20000}, rng);

  metrics::BallGrowingOptions opts;
  opts.sample = {.centers = 64, .seed = 3, .expansion_budget = 5000};
  opts.max_ball_nodes = 5000;
  opts.big_ball_threshold = 5000;
  const metrics::BallMetric avg_degree =
      [](const Graph& ball, graph::Rng&) { return ball.average_degree(); };
  const metrics::Series s = metrics::BallGrowingSeries(g, opts, avg_degree);

  ASSERT_TRUE(s.has_error());
  ASSERT_FALSE(s.y.empty());
  // 64 balls of varying shape: the per-radius metric variance is real,
  // so at least one half-width must be strictly positive (a uniformly
  // zero yerr column means the second moment was dropped somewhere).
  EXPECT_TRUE(std::any_of(s.yerr.begin(), s.yerr.end(),
                          [](double e) { return e > 0.0; }));

  const metrics::Series again = metrics::BallGrowingSeries(g, opts, avg_degree);
  EXPECT_EQ(again.y, s.y);
  EXPECT_EQ(again.yerr, s.yerr);
}

}  // namespace
}  // namespace topogen
