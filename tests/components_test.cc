#include "graph/components.h"

#include <gtest/gtest.h>

#include "gen/canonical.h"

namespace topogen::graph {
namespace {

TEST(ComponentsTest, SingleComponent) {
  const Graph g = gen::Ring(5);
  const ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.count, 1u);
  EXPECT_EQ(info.sizes[0], 5u);
  EXPECT_TRUE(IsConnected(g));
}

TEST(ComponentsTest, CountsIsolatedNodes) {
  const Graph g = Graph::FromEdges(5, {{0, 1}});
  const ComponentInfo info = ConnectedComponents(g);
  EXPECT_EQ(info.count, 4u);  // {0,1}, {2}, {3}, {4}
  EXPECT_FALSE(IsConnected(g));
}

TEST(ComponentsTest, EmptyGraphIsConnected) {
  EXPECT_TRUE(IsConnected(Graph{}));
}

TEST(LargestComponentTest, PicksBiggest) {
  // Components: {0,1,2} triangle and {3,4} edge.
  const Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  const Subgraph big = LargestComponent(g);
  EXPECT_EQ(big.graph.num_nodes(), 3u);
  EXPECT_EQ(big.graph.num_edges(), 3u);
}

TEST(LargestComponentTest, ConnectedGraphIsUnchanged) {
  const Graph g = gen::Ring(6);
  const Subgraph big = LargestComponent(g);
  EXPECT_EQ(big.graph.num_nodes(), 6u);
  EXPECT_EQ(big.original_id.size(), 6u);
}

TEST(BiconnectivityTest, TreeHasOneComponentPerEdge) {
  const Graph g = gen::KaryTree(2, 3);  // 15 nodes, 14 edges, all bridges
  EXPECT_EQ(CountBiconnectedComponents(g), g.num_edges());
}

TEST(BiconnectivityTest, CycleIsOneComponent) {
  EXPECT_EQ(CountBiconnectedComponents(gen::Ring(8)), 1u);
}

TEST(BiconnectivityTest, TwoTrianglesSharingAVertex) {
  const Graph g = Graph::FromEdges(
      5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  EXPECT_EQ(CountBiconnectedComponents(g), 2u);
  EXPECT_EQ(CountArticulationPoints(g), 1u);  // node 2
}

TEST(BiconnectivityTest, BarbellGraph) {
  // Triangle - bridge - triangle: 3 biconnected components.
  const Graph g = Graph::FromEdges(6, {{0, 1},
                                       {1, 2},
                                       {0, 2},
                                       {2, 3},
                                       {3, 4},
                                       {4, 5},
                                       {3, 5}});
  EXPECT_EQ(CountBiconnectedComponents(g), 3u);
  EXPECT_EQ(CountArticulationPoints(g), 2u);  // nodes 2 and 3
}

TEST(BiconnectivityTest, PathArticulationPoints) {
  const Graph g = gen::Linear(5);
  EXPECT_EQ(CountArticulationPoints(g), 3u);  // all interior nodes
  EXPECT_EQ(CountBiconnectedComponents(g), 4u);
}

TEST(BiconnectivityTest, CompleteGraphHasNoCutVertex) {
  const Graph g = gen::Complete(6);
  EXPECT_EQ(CountArticulationPoints(g), 0u);
  EXPECT_EQ(CountBiconnectedComponents(g), 1u);
}

TEST(BiconnectivityTest, DisconnectedGraphSumsComponents) {
  // Two disjoint cycles.
  GraphBuilder b(8);
  for (NodeId i = 0; i < 4; ++i) b.AddEdge(i, (i + 1) % 4);
  for (NodeId i = 0; i < 4; ++i) b.AddEdge(4 + i, 4 + (i + 1) % 4);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(CountBiconnectedComponents(g), 2u);
}

TEST(CoreGraphTest, TreeCollapsesCompletely) {
  const Graph g = gen::KaryTree(3, 4);
  const Subgraph core = CoreGraph(g);
  EXPECT_EQ(core.graph.num_nodes(), 0u);
}

TEST(CoreGraphTest, CycleSurvives) {
  const Graph g = gen::Ring(7);
  const Subgraph core = CoreGraph(g);
  EXPECT_EQ(core.graph.num_nodes(), 7u);
}

TEST(CoreGraphTest, PendantChainIsPruned) {
  // Cycle 0-1-2-3 with a chain 3-4-5 hanging off.
  const Graph g = Graph::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {3, 4}, {4, 5}});
  const Subgraph core = CoreGraph(g);
  EXPECT_EQ(core.graph.num_nodes(), 4u);
  EXPECT_EQ(core.graph.num_edges(), 4u);
}

}  // namespace
}  // namespace topogen::graph
