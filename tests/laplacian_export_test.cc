#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/export.h"
#include "gen/canonical.h"
#include "gen/measured.h"
#include "gen/plrg.h"
#include "metrics/laplacian.h"

namespace topogen {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

TEST(LaplacianTest, GridHasNoEigenvalue1Mass) {
  // No degree-1 nodes at all.
  EXPECT_EQ(metrics::Eigenvalue1MultiplicityLowerBound(gen::Mesh(10, 10)),
            0u);
}

TEST(LaplacianTest, StarIsMaximal) {
  // k pendants on one hub: multiplicity k - 1.
  graph::GraphBuilder b(9);
  for (NodeId i = 1; i < 9; ++i) b.AddEdge(0, i);
  EXPECT_EQ(metrics::Eigenvalue1MultiplicityLowerBound(std::move(b).Build()),
            7u);
}

TEST(LaplacianTest, TreeLeafFans) {
  // Complete ternary tree: each bottom-level internal node fans 3 leaves,
  // contributing 2 apiece.
  const Graph g = gen::KaryTree(3, 3);  // 27 leaves under 9 parents
  EXPECT_EQ(metrics::Eigenvalue1MultiplicityLowerBound(g), 9u * 2u);
}

TEST(LaplacianTest, PathHasIsolatedPendants) {
  // Two endpoints with distinct neighbors: no fan of size > 1.
  EXPECT_EQ(metrics::Eigenvalue1MultiplicityLowerBound(gen::Linear(10)), 0u);
}

TEST(LaplacianTest, AsGraphBeatsGridAndTree) {
  // Vukadinovic et al.: eigenvalue-1 mass separates AS graphs from grids
  // and random trees. Our stand-in's stub fans give it a large fraction.
  Rng rng(1);
  gen::MeasuredAsParams p;
  p.n = 2000;
  const Graph as = gen::MeasuredAs(p, rng).graph;
  const double as_fraction = metrics::Eigenvalue1Fraction(as);
  EXPECT_GT(as_fraction, 0.03);
  EXPECT_GT(as_fraction, metrics::Eigenvalue1Fraction(gen::Mesh(30, 30)));
}

TEST(ExportTest, FigureFilesWritten) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "topogen_export_test";
  std::filesystem::remove_all(dir);
  metrics::Series s;
  s.name = "curve1";
  s.Add(1, 2);
  s.Add(3, 4);
  core::ExportFigure(dir.string(), "figX", "a title", {s}, true, false);
  EXPECT_TRUE(std::filesystem::exists(dir / "figX.dat"));
  EXPECT_TRUE(std::filesystem::exists(dir / "figX.gp"));
  std::ifstream gp(dir / "figX.gp");
  std::stringstream content;
  content << gp.rdbuf();
  EXPECT_NE(content.str().find("set logscale x"), std::string::npos);
  EXPECT_NE(content.str().find("index 0"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ExportTest, CsvFormat) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "topogen_export_test.csv";
  metrics::Series a, b;
  a.name = "a";
  a.Add(1, 10);
  b.name = "b";
  b.Add(2, 20);
  core::ExportCsv(path.string(), {a, b});
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "curve,x,y");
  std::getline(is, line);
  EXPECT_EQ(line, "a,1,10");
  std::getline(is, line);
  EXPECT_EQ(line, "b,2,20");
  std::filesystem::remove(path);
}

TEST(ExportTest, BadDirectoryThrows) {
  metrics::Series s;
  s.Add(1, 1);
  EXPECT_THROW(
      core::ExportCsv("/nonexistent_dir_zzz/file.csv", {s}),
      std::runtime_error);
}

}  // namespace
}  // namespace topogen
