#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/report.h"
#include "core/roster.h"
#include "core/suite.h"
#include "obs/env.h"

namespace topogen::core {
namespace {

RosterOptions Tiny() {
  RosterOptions ro;
  ro.seed = 9;
  ro.as_nodes = 500;
  ro.rl_expansion_ratio = 3.0;
  ro.plrg_nodes = 1200;
  ro.degree_based_nodes = 1000;
  return ro;
}

TEST(RosterTest, DeterministicForSeed) {
  const RosterOptions ro = Tiny();
  const Topology a = MakePlrg(ro);
  const Topology b = MakePlrg(ro);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

TEST(RosterTest, DifferentSeedsDiffer) {
  RosterOptions a = Tiny(), b = Tiny();
  b.seed = 10;
  EXPECT_NE(MakePlrg(a).graph.edges(), MakePlrg(b).graph.edges());
}

TEST(RosterTest, GeneratorsGetIndependentStreams) {
  // Changing one factory's salt must not perturb another's output; build
  // order must not matter either.
  const RosterOptions ro = Tiny();
  const Topology waxman_first = MakeWaxman(ro);
  MakeTiers(ro);  // interleave another construction
  const Topology waxman_second = MakeWaxman(ro);
  EXPECT_EQ(waxman_first.graph.edges(), waxman_second.graph.edges());
}

TEST(RosterTest, CategoriesAreLabeled) {
  const RosterOptions ro = Tiny();
  EXPECT_EQ(MakeTree(ro).category, Category::kCanonical);
  EXPECT_EQ(MakeTransitStub(ro).category, Category::kStructural);
  EXPECT_EQ(MakePlrg(ro).category, Category::kDegreeBased);
  EXPECT_EQ(MakeWaxman(ro).category, Category::kRandom);
  EXPECT_EQ(MakeAs(ro).category, Category::kMeasured);
}

TEST(RosterTest, MeasuredTopologiesCarryPolicy) {
  const RosterOptions ro = Tiny();
  const Topology as = MakeAs(ro);
  EXPECT_TRUE(as.has_policy());
  EXPECT_EQ(as.relationship.size(), as.graph.num_edges());
  const RlArtifacts rl = MakeRl(ro);
  EXPECT_TRUE(rl.topology.has_policy());
  EXPECT_EQ(rl.as_of.size(), rl.topology.graph.num_nodes());
  EXPECT_FALSE(MakePlrg(ro).has_policy());
}

TEST(SuiteTest, PolicyWithoutAnnotationThrows) {
  const RosterOptions ro = Tiny();
  const Topology plrg = MakePlrg(ro);
  SuiteOptions so;
  so.use_policy = true;
  EXPECT_THROW(RunBasicMetrics(plrg, so), std::invalid_argument);
}

TEST(SuiteTest, SeriesAreNamedAfterTopology) {
  const RosterOptions ro = Tiny();
  SuiteOptions so;
  so.ball.max_centers = 4;
  const Topology as = MakeAs(ro);
  const BasicMetrics plain = RunBasicMetrics(as, so);
  EXPECT_EQ(plain.expansion.name, "AS");
  so.use_policy = true;
  const BasicMetrics policy = RunBasicMetrics(as, so);
  EXPECT_EQ(policy.expansion.name, "AS(Policy)");
  // Policy expansion is never faster than plain expansion.
  const std::size_t common =
      std::min(plain.expansion.size(), policy.expansion.size());
  for (std::size_t i = 0; i + 1 < common; ++i) {
    EXPECT_LE(policy.expansion.y[i], plain.expansion.y[i] + 1e-9)
        << "radius " << plain.expansion.x[i];
  }
}

TEST(ReportTest, PanelExportsWhenOutdirSet) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "topogen_panel_export";
  std::filesystem::remove_all(dir);
  ::setenv("TOPOGEN_OUTDIR", dir.c_str(), 1);
  obs::Env::ResetForTesting();  // env is resolved once; re-resolve after setenv
  metrics::Series s;
  s.name = "c";
  s.Add(1, 1);
  std::ostringstream os;
  PrintPanel(os, "test1", "Title", {s});
  ::unsetenv("TOPOGEN_OUTDIR");
  obs::Env::ResetForTesting();
  EXPECT_TRUE(std::filesystem::exists(dir / "figtest1.dat"));
  EXPECT_TRUE(std::filesystem::exists(dir / "figtest1.gp"));
  std::filesystem::remove_all(dir);
}

TEST(ReportTest, NoExportWithoutOutdir) {
  ::unsetenv("TOPOGEN_OUTDIR");
  obs::Env::ResetForTesting();
  metrics::Series s;
  s.Add(1, 1);
  std::ostringstream os;
  PrintPanel(os, "test2", "Title", {s});
  EXPECT_NE(os.str().find("# panel test2"), std::string::npos);
}

}  // namespace
}  // namespace topogen::core
