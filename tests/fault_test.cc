#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace topogen::fault {
namespace {

// Every test re-arms from scratch and disarms on exit, so armed rules
// never leak into other test cases (the registry is process-wide).
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!CompiledIn()) {
      GTEST_SKIP() << "fault points compiled out (TOPOGEN_FAULT_POINTS=OFF)";
    }
    Disarm();
  }
  void TearDown() override { Disarm(); }
};

TEST_F(FaultTest, CatalogNamesAreUniqueAndNamespaced) {
  std::set<std::string_view> seen;
  for (const PointInfo& p : RegisteredPoints()) {
    EXPECT_TRUE(seen.insert(p.name).second) << "duplicate: " << p.name;
    EXPECT_NE(p.name.find('.'), std::string_view::npos) << p.name;
    EXPECT_FALSE(p.seam.empty()) << p.name;
  }
  EXPECT_GE(seen.size(), 13u);
}

TEST_F(FaultTest, DisarmedHitsAreInvisible) {
  EXPECT_FALSE(Hit("store.write.torn").has_value());
  EXPECT_NO_THROW(ThrowIfArmed("gen.validate"));
  EXPECT_EQ(HitCount("store.write.torn"), 0u);
}

TEST_F(FaultTest, BareNameFiresEveryHit) {
  ArmForTesting("graph.csr.parse");
  EXPECT_THROW(ThrowIfArmed("graph.csr.parse"), InjectedFault);
  EXPECT_THROW(ThrowIfArmed("graph.csr.parse"), InjectedFault);
  EXPECT_EQ(HitCount("graph.csr.parse"), 2u);
  EXPECT_EQ(FiredCount("graph.csr.parse"), 2u);
  // Unarmed points stay silent even while another rule is armed.
  EXPECT_FALSE(Hit("store.write.torn").has_value());
}

TEST_F(FaultTest, NthFiresExactlyOnce) {
  ArmForTesting("store.write.torn@nth=3");
  for (int hit = 1; hit <= 5; ++hit) {
    const auto injection = Hit("store.write.torn");
    if (hit == 3) {
      ASSERT_TRUE(injection.has_value());
      EXPECT_EQ(injection->kind, Kind::kShortWrite);  // catalog default
    } else {
      EXPECT_FALSE(injection.has_value()) << "hit " << hit;
    }
  }
  EXPECT_EQ(HitCount("store.write.torn"), 5u);
  EXPECT_EQ(FiredCount("store.write.torn"), 1u);
}

TEST_F(FaultTest, ProbabilityStreamIsSeedReproducible) {
  const auto pattern = [] {
    ArmForTesting("store.write.torn@p=0.5,seed=7");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(Hit("store.write.torn").has_value());
    }
    return fired;
  };
  const std::vector<bool> first = pattern();
  const std::vector<bool> second = pattern();
  EXPECT_EQ(first, second);
  // p=0.5 over 64 draws fires somewhere strictly between never and always.
  const std::size_t fires =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultTest, MatchFiltersOnDetailSubstring) {
  ArmForTesting("gen.validate@match=Inet");
  EXPECT_NO_THROW(ThrowIfArmed("gen.validate", "PLRG"));
  EXPECT_NO_THROW(ThrowIfArmed("gen.validate", ""));
  EXPECT_EQ(HitCount("gen.validate"), 0u);  // non-matching hits don't count
  EXPECT_THROW(ThrowIfArmed("gen.validate", "Inet"), InjectedFault);
  EXPECT_EQ(FiredCount("gen.validate"), 1u);
}

TEST_F(FaultTest, KindOverrideChangesTheInjection) {
  // A throw-by-default point demoted to a site-interpreted kind...
  ArmForTesting("graph.csr.parse@kind=corrupt");
  const auto injection = Hit("graph.csr.parse");
  ASSERT_TRUE(injection.has_value());
  EXPECT_EQ(injection->kind, Kind::kCorruptByte);
  // ...and a short-write point promoted to the crash kind.
  ArmForTesting("store.journal.append@kind=abort");
  const auto abort_injection = Hit("store.journal.append");
  ASSERT_TRUE(abort_injection.has_value());
  EXPECT_EQ(abort_injection->kind, Kind::kAbort);
}

TEST_F(FaultTest, DelayFiresButReturnsNothing) {
  ArmForTesting("store.write.torn@kind=delay,ms=1");
  EXPECT_FALSE(Hit("store.write.torn").has_value());
  EXPECT_EQ(FiredCount("store.write.torn"), 1u);
}

TEST_F(FaultTest, UnknownPointsAndParamsAreSkippedNotFatal) {
  ArmForTesting("no.such.point;store.write.torn@nth=1;gen.validate@bogus");
  // The malformed and unknown rules are dropped; the valid one survives.
  EXPECT_TRUE(Hit("store.write.torn").has_value());
  EXPECT_NO_THROW(ThrowIfArmed("gen.validate"));
}

TEST_F(FaultTest, DisarmZeroesCountsAndSilencesPoints) {
  ArmForTesting("store.write.torn");
  ASSERT_TRUE(Hit("store.write.torn").has_value());
  Disarm();
  EXPECT_FALSE(Hit("store.write.torn").has_value());
  EXPECT_EQ(HitCount("store.write.torn"), 0u);
  EXPECT_EQ(FiredCount("store.write.torn"), 0u);
}

TEST_F(FaultTest, InjectedFaultCarriesTypedProvenance) {
  ArmForTesting("parallel.task");
  try {
    ThrowIfArmed("parallel.task", "chunk 3");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kInjected);
    EXPECT_EQ(e.error().fail_point, "parallel.task");
    EXPECT_NE(std::string(e.what()).find("parallel.task"), std::string::npos);
  }
}

TEST(FaultErrorTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kInjected), "injected");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kRetryExhausted), "retry_exhausted");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kCorrupt), "corrupt");
}

TEST(FaultErrorTest, ResultCarriesValueOrError) {
  const Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  const Result<int> bad(Error{ErrorCode::kIo, "disk on fire", {}, 0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kIo);
}

}  // namespace
}  // namespace topogen::fault
