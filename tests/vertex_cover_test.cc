#include "graph/vertex_cover.h"

#include <gtest/gtest.h>

#include "gen/canonical.h"

namespace topogen::graph {
namespace {

TEST(VertexCoverTest, EdgelessGraphIsZero) {
  EXPECT_EQ(ApproxVertexCoverSize(Graph::FromEdges(5, {})), 0u);
}

TEST(VertexCoverTest, SingleEdgeNeedsOne) {
  EXPECT_EQ(ApproxVertexCoverSize(Graph::FromEdges(2, {{0, 1}})), 1u);
}

TEST(VertexCoverTest, StarNeedsOnlyCenter) {
  GraphBuilder b(9);
  for (NodeId i = 1; i < 9; ++i) b.AddEdge(0, i);
  EXPECT_EQ(ApproxVertexCoverSize(std::move(b).Build()), 1u);
}

TEST(VertexCoverTest, PathCover) {
  // Optimal cover of a path with n nodes is floor(n/2).
  EXPECT_LE(ApproxVertexCoverSize(gen::Linear(9)), 5u);
  EXPECT_GE(ApproxVertexCoverSize(gen::Linear(9)), 4u);
}

TEST(VertexCoverTest, CompleteGraphNeedsAllButOne) {
  EXPECT_EQ(ApproxVertexCoverSize(gen::Complete(7)), 6u);
}

TEST(VertexCoverTest, CycleCover) {
  // Optimal for C_n is ceil(n/2); 2-approximation must stay under n.
  const std::size_t cover = ApproxVertexCoverSize(gen::Ring(10));
  EXPECT_GE(cover, 5u);
  EXPECT_LE(cover, 8u);
}

TEST(VertexCoverTest, CoverIsValid) {
  // Rebuild the greedy decision indirectly: every edge must have at least
  // one endpoint in any valid cover, so removing a claimed-cover-size
  // lower bound sanity check -- here we verify the bound against the
  // matching lower bound (any maximal matching size <= cover size).
  const Graph g = gen::Mesh(6, 6);
  std::size_t matching = 0;
  std::vector<bool> used(g.num_nodes(), false);
  for (const Edge& e : g.edges()) {
    if (!used[e.u] && !used[e.v]) {
      used[e.u] = used[e.v] = true;
      ++matching;
    }
  }
  const std::size_t cover = ApproxVertexCoverSize(g);
  EXPECT_GE(cover, matching);
  EXPECT_LE(cover, 2 * matching);
}

TEST(WeightedVertexCoverTest, PrefersCheapSide) {
  // Star where the hub is expensive: covering with leaves is cheaper only
  // if their total is below the hub weight.
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {0, 3}};
  const std::vector<double> hub_cheap{1.0, 10.0, 10.0, 10.0};
  EXPECT_NEAR(ApproxWeightedVertexCover(4, edges, hub_cheap), 1.0, 1e-9);
  // Local ratio is a 2-approximation; with an expensive hub the optimum is
  // 3 (hub loses only when leaves total less).
  const std::vector<double> hub_costly{100.0, 1.0, 1.0, 1.0};
  EXPECT_LE(ApproxWeightedVertexCover(4, edges, hub_costly), 6.0);
  EXPECT_GE(ApproxWeightedVertexCover(4, edges, hub_costly), 3.0);
}

TEST(WeightedVertexCoverTest, SingleEdgeTakesLighterEndpoint) {
  const std::vector<Edge> edges{{0, 1}};
  const std::vector<double> w{5.0, 2.0};
  EXPECT_NEAR(ApproxWeightedVertexCover(2, edges, w), 2.0, 1e-9);
}

TEST(WeightedVertexCoverTest, CompleteBipartiteMinSide) {
  // K_{2,4} with unit weights: optimum covers the 2-side.
  std::vector<Edge> edges;
  for (NodeId a = 0; a < 2; ++a) {
    for (NodeId b = 2; b < 6; ++b) edges.push_back({a, b});
  }
  const std::vector<double> w(6, 1.0);
  const double cover = ApproxWeightedVertexCover(6, edges, w);
  EXPECT_GE(cover, 2.0);
  EXPECT_LE(cover, 4.0);
}

TEST(WeightedVertexCoverTest, NoEdgesIsFree) {
  EXPECT_DOUBLE_EQ(ApproxWeightedVertexCover(3, {}, std::vector<double>(3, 1.0)),
                   0.0);
}

}  // namespace
}  // namespace topogen::graph
