// Edge cases and option-surface tests across modules: the paths ordinary
// usage doesn't hit but a library must still get right.
#include <gtest/gtest.h>

#include "bfs_testutil.h"
#include "gen/canonical.h"
#include "gen/waxman.h"
#include "graph/bfs.h"
#include "graph/partition.h"
#include "graph/trees.h"
#include "metrics/ball.h"
#include "metrics/classification.h"
#include "metrics/expansion.h"

namespace topogen {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

TEST(BfsEdgeCases, MaxDepthZeroReachesOnlySource) {
  const Graph g = gen::Ring(8);
  const auto d = graph::testutil::BfsDistances(g, 3, 0);
  for (NodeId v = 0; v < 8; ++v) {
    if (v == 3) {
      EXPECT_EQ(d[v], 0u);
    } else {
      EXPECT_EQ(d[v], graph::kUnreachable);
    }
  }
}

TEST(BfsEdgeCases, OutOfRangeSourceYieldsNothing) {
  const Graph g = gen::Ring(4);
  const auto d = graph::testutil::BfsDistances(g, 99);
  for (const auto x : d) EXPECT_EQ(x, graph::kUnreachable);
  EXPECT_TRUE(graph::testutil::Ball(g, 99, 2).empty());
}

TEST(BfsEdgeCases, SingleNodeGraph) {
  const Graph g = Graph::FromEdges(1, {});
  EXPECT_EQ(graph::Eccentricity(g, 0), 0u);
  EXPECT_EQ(graph::testutil::ReachableCounts(g, 0).size(), 1u);
  EXPECT_DOUBLE_EQ(graph::AveragePathLength(g), 0.0);
}

TEST(PartitionOptions, SingleTrialIsDeterministic) {
  const Graph g = gen::Mesh(10, 10);
  graph::BisectionOptions opts;
  opts.num_trials = 1;
  Rng a(5), b(5);
  EXPECT_EQ(graph::BalancedMinCut(g, a, opts),
            graph::BalancedMinCut(g, b, opts));
}

TEST(PartitionOptions, StricterBalanceNeverCheapens) {
  // A tighter balance constraint shrinks the feasible set, so the best
  // cut can only stay equal or grow (modulo heuristic noise: average over
  // trials and allow a whisker).
  const Graph g = gen::KaryTree(2, 8);  // 511 nodes
  graph::BisectionOptions loose;
  loose.min_side_fraction = 1.0 / 3.0;
  graph::BisectionOptions tight;
  tight.min_side_fraction = 0.49;
  Rng a(7), b(7);
  const auto loose_cut = graph::BalancedMinCut(g, a, loose);
  const auto tight_cut = graph::BalancedMinCut(g, b, tight);
  EXPECT_GE(tight_cut + 1, loose_cut);
  // A complete binary tree always admits a one-edge cut under the loose
  // rule (a 255-of-511 subtree); the heuristic must find something small.
  EXPECT_LE(loose_cut, 2u);
}

TEST(PartitionOptions, NoCoarseningStillWorks) {
  const Graph g = gen::Ring(40);
  graph::BisectionOptions opts;
  opts.coarsest_size = 1000;  // hierarchy is a single level
  Rng rng(9);
  EXPECT_EQ(graph::BalancedMinCut(g, rng, opts), 2u);
}

TEST(TreesEdgeCases, BfsTreeOnDisconnectedGraphCoversComponentOnly) {
  const Graph g = Graph::FromEdges(5, {{0, 1}, {2, 3}});
  const graph::SpanningTree t = graph::BfsTree(g, 0);
  EXPECT_NE(t.parent[1], graph::kInvalidNode);
  EXPECT_EQ(t.parent[2], graph::kInvalidNode);
  EXPECT_EQ(graph::TreeDistance(t, 0, 2), graph::kUnreachable);
}

TEST(TreesEdgeCases, DistortionOfDisconnectedScoresCoveredEdges) {
  Rng rng(11);
  const Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  // Distortion from component {0,1,2}: the other component's edges are
  // skipped, not crashed on.
  const double d = graph::BestDistortion(g, rng);
  EXPECT_GE(d, 1.0 - 1e-12);
}

TEST(WaxmanOptions, KeepAllComponents) {
  Rng rng(13);
  gen::WaxmanParams p{1500, 0.004, 0.08, /*keep_largest_component=*/false};
  const Graph g = gen::Waxman(p, rng);
  EXPECT_EQ(g.num_nodes(), 1500u);  // nothing dropped
}

TEST(BallGrowingOptions, MaxRadiusTruncates) {
  const Graph g = gen::Linear(200);
  metrics::BallGrowingOptions opts;
  opts.max_centers = 4;
  opts.max_radius = 5;
  const metrics::Series s = metrics::BallGrowingSeries(
      g, opts, [](const Graph& ball, Rng&) {
        return static_cast<double>(ball.num_nodes());
      });
  ASSERT_FALSE(s.empty());
  EXPECT_LE(s.size(), 5u);
  EXPECT_LE(s.x.back(), 11.0);  // radius 5 on a path: at most 11 nodes
}

TEST(BallGrowingOptions, MaxBallNodesSkipsBigBalls) {
  const Graph g = gen::Mesh(20, 20);
  metrics::BallGrowingOptions opts;
  opts.max_centers = 4;
  opts.max_ball_nodes = 50;
  const metrics::Series s = metrics::BallGrowingSeries(
      g, opts, [](const Graph& ball, Rng&) {
        return static_cast<double>(ball.num_nodes());
      });
  for (const double x : s.x) EXPECT_LE(x, 50.0);
}

TEST(ClassifierOptions, TailRatioThresholdFlipsExpansion) {
  // The same series reads High under a permissive threshold and Low under
  // an impossible one -- the knob actually routes through.
  metrics::Series e;
  for (int h = 1; h <= 10; ++h) {
    e.Add(h, std::min(1.0, 1e-3 * std::pow(1.8, h)));
  }
  metrics::ClassifierOptions permissive;
  permissive.expansion_tail_ratio = 1.3;
  metrics::ClassifierOptions impossible;
  impossible.expansion_tail_ratio = 99.0;
  EXPECT_EQ(metrics::ClassifyExpansion(e, permissive),
            metrics::Level::kHigh);
  EXPECT_EQ(metrics::ClassifyExpansion(e, impossible), metrics::Level::kLow);
}

TEST(ExpansionOptions, SourceSubsamplingStaysClose) {
  Rng rng(15);
  const Graph g = gen::ErdosRenyi(1500, 4.0 / 1500, rng);
  const metrics::Series full = metrics::Expansion(g, {.max_sources = 5000});
  const metrics::Series sampled =
      metrics::Expansion(g, {.max_sources = 100, .seed = 3});
  const std::size_t common = std::min(full.size(), sampled.size());
  ASSERT_GT(common, 3u);
  for (std::size_t i = 0; i + 1 < common; ++i) {
    EXPECT_NEAR(sampled.y[i], full.y[i], 0.25 * full.y[i] + 0.01);
  }
}

}  // namespace
}  // namespace topogen
