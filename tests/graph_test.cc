#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace topogen::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(GraphTest, SingleEdge) {
  const Graph g = Graph::FromEdges(2, {{0, 1}});
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(GraphTest, DropsSelfLoops) {
  const Graph g = Graph::FromEdges(3, {{0, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphTest, CollapsesParallelEdges) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(GraphTest, CanonicalEdgeOrientation) {
  const Graph g = Graph::FromEdges(4, {{3, 1}, {2, 0}});
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, e.v);
  }
}

TEST(GraphTest, NeighborsAreSorted) {
  const Graph g = Graph::FromEdges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphTest, EdgeIdRoundTrip) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& ed = g.edges()[e];
    EXPECT_EQ(g.edge_id(ed.u, ed.v), e);
    EXPECT_EQ(g.edge_id(ed.v, ed.u), e);
  }
  EXPECT_EQ(g.edge_id(0, 2), kInvalidEdge);
  EXPECT_EQ(g.edge_id(0, 0), kInvalidEdge);
}

TEST(GraphTest, IncidentEdgesMatchNeighbors) {
  const Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  const auto nbrs = g.neighbors(0);
  const auto eids = g.incident_edges(0);
  ASSERT_EQ(nbrs.size(), eids.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(g.opposite(eids[i], 0), nbrs[i]);
  }
}

TEST(GraphTest, OutOfRangeEndpointThrows) {
  EXPECT_THROW(Graph::FromEdges(2, {{0, 2}}), std::out_of_range);
}

TEST(GraphTest, MaxDegreeAndCount) {
  // Star on 5 nodes: center degree 4, leaves degree 1.
  const Graph g = Graph::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(g.max_degree(), 4u);
  EXPECT_EQ(g.count_degree(1), 4u);
  EXPECT_EQ(g.count_degree(4), 1u);
  EXPECT_EQ(g.count_degree(2), 0u);
}

TEST(GraphBuilderTest, AddNodeAssignsSequentialIds) {
  GraphBuilder b;
  EXPECT_EQ(b.AddNode(), 0u);
  EXPECT_EQ(b.AddNode(), 1u);
  b.EnsureNodes(5);
  EXPECT_EQ(b.AddNode(), 5u);
  EXPECT_EQ(b.num_nodes(), 6u);
}

TEST(GraphBuilderTest, BuildDedups) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(2, 2);
  b.AddEdge(1, 2);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(SubgraphTest, InducedKeepsInternalEdges) {
  // Path 0-1-2-3-4; induce {1,2,3}.
  const Graph g =
      Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<NodeId> keep{1, 2, 3};
  const Subgraph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);
  EXPECT_EQ(sub.original_id, keep);
}

TEST(SubgraphTest, InducedOnDisjointSetHasNoEdges) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const std::vector<NodeId> keep{0, 2};
  const Subgraph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.num_edges(), 0u);
}

TEST(SubgraphTest, InducedFullSetIsIsomorphic) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const std::vector<NodeId> keep{0, 1, 2, 3};
  const Subgraph sub = InducedSubgraph(g, keep);
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(GraphTest, SummaryMentionsCounts) {
  const Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  const std::string s = g.Summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=2"), std::string::npos);
}

}  // namespace
}  // namespace topogen::graph
