// topogend's server core: protocol parsing, admission, in-flight dedup,
// deadlines, and the end-to-end socket round trip (docs/SERVICE.md).
//
// Server tests bind an ephemeral loopback port per test; the roster
// overrides keep every computed topology tiny so the suite stays fast.
#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scale.h"
#include "core/session.h"
#include "fault/fault.h"
#include "obs/env.h"
#include "obs/json.h"
#include "service/protocol.h"

namespace topogen::service {
namespace {

using obs::Json;

// --- request parsing ---

TEST(ServiceParseTest, MinimalRequestGetsDefaultMetrics) {
  const ParseOutcome out = ParseRequest(R"({"topology":"Tree"})");
  ASSERT_TRUE(out.request.has_value());
  EXPECT_EQ(out.request->topology, "Tree");
  EXPECT_EQ(out.request->metrics.size(), 4u);
  EXPECT_TRUE(out.request->wants("expansion"));
  EXPECT_TRUE(out.request->wants("signature"));
  EXPECT_FALSE(out.request->wants("linkvalue"));
  EXPECT_TRUE(out.request->inline_figures);
  EXPECT_EQ(out.request->deadline_ms, 0);
}

TEST(ServiceParseTest, FullRequestRoundTrips) {
  const ParseOutcome out = ParseRequest(
      R"({"id":"q1","topology":"PLRG","metrics":["linkvalue","expansion"],)"
      R"("use_policy":false,"inline":false,"scale":"small","seed":7,)"
      R"("deadline_ms":2500,"plrg_nodes":500})");
  ASSERT_TRUE(out.request.has_value()) << out.error;
  const Request& r = *out.request;
  EXPECT_EQ(r.id, "q1");
  EXPECT_EQ(r.topology, "PLRG");
  EXPECT_TRUE(r.wants("linkvalue"));
  EXPECT_TRUE(r.wants("expansion"));
  EXPECT_FALSE(r.wants("resilience"));
  EXPECT_FALSE(r.inline_figures);
  EXPECT_EQ(r.scale, "small");
  EXPECT_EQ(r.seed, 7u);
  EXPECT_EQ(r.deadline_ms, 2500);
  EXPECT_EQ(r.plrg_nodes, 500u);
}

struct BadLine {
  const char* line;
  const char* why;
};

TEST(ServiceParseTest, MalformedLinesAreRejectedNotGuessed) {
  const BadLine cases[] = {
      {"", "empty line"},
      {"{", "truncated JSON"},
      {R"({"topology":"Tree")", "unterminated object"},
      {"[1,2,3]", "not an object"},
      {"42", "bare number"},
      {R"({"metrics":["expansion"]})", "missing topology"},
      {R"({"topology":""})", "empty topology"},
      {R"({"topology":17})", "non-string topology"},
      {R"({"topology":"Tree","metrics":[]})", "empty metrics"},
      {R"({"topology":"Tree","metrics":["bogus"]})", "unknown metric"},
      {R"({"topology":"Tree","metrics":[3]})", "non-string metric"},
      {R"({"topology":"Tree","frobnicate":1})", "unknown field"},
      {R"({"topology":"Tree","seed":0})", "zero seed"},
      {R"({"topology":"Tree","seed":-4})", "negative seed"},
      {R"({"topology":"Tree","seed":1.5})", "fractional seed"},
      {R"({"topology":"Tree","deadline_ms":0})", "zero deadline"},
      {R"({"topology":"Tree","deadline_ms":99999999999})", "huge deadline"},
      {R"({"topology":"Tree","scale":"huge"})", "unknown scale"},
      {R"({"topology":"Tree","as_nodes":0})", "zero roster size"},
      {R"({"topology":"Tree","inline":"yes"})", "non-bool inline"},
      {R"({"topology":"Tree","use_policy":1})", "non-bool use_policy"},
  };
  for (const BadLine& c : cases) {
    const ParseOutcome out = ParseRequest(c.line);
    EXPECT_FALSE(out.request.has_value()) << c.why;
    EXPECT_FALSE(out.error.empty()) << c.why;
  }
}

TEST(ServiceParseTest, UnknownMetricNamesTheOffender) {
  const ParseOutcome out =
      ParseRequest(R"({"topology":"Tree","metrics":["expansion","girth"]})");
  ASSERT_FALSE(out.request.has_value());
  EXPECT_NE(out.error.find("girth"), std::string::npos) << out.error;
}

TEST(ServiceParseTest, OversizedRosterIsRejectedWithTheCap) {
  const ParseOutcome out =
      ParseRequest(R"({"topology":"PLRG","plrg_nodes":2000000})");
  ASSERT_FALSE(out.request.has_value());
  EXPECT_NE(out.error.find("oversized roster"), std::string::npos)
      << out.error;
}

TEST(ServiceParseTest, ErrorsStillRecoverTheClientId) {
  const ParseOutcome out = ParseRequest(R"({"id":"x9","metrics":["nope"]})");
  EXPECT_FALSE(out.request.has_value());
  EXPECT_EQ(out.id, "x9");
}

TEST(ServiceParseTest, DuplicateMetricsCollapse) {
  const ParseOutcome out = ParseRequest(
      R"({"topology":"Tree","metrics":["expansion","expansion"]})");
  ASSERT_TRUE(out.request.has_value());
  EXPECT_EQ(out.request->metrics.size(), 1u);
}

TEST(ServiceParseTest, OverlongLineIsRejected) {
  std::string line = R"({"topology":"Tree","id":")";
  line += std::string(kMaxRequestBytes, 'a');
  line += "\"}";
  const ParseOutcome out = ParseRequest(line);
  EXPECT_FALSE(out.request.has_value());
}

// --- the dedup key ---

TEST(ServiceKeyTest, MetricOrderAndDefaultScaleCanonicalize) {
  ParseOutcome a = ParseRequest(
      R"({"topology":"Tree","metrics":["expansion","signature"]})");
  ParseOutcome b = ParseRequest(
      R"({"topology":"Tree","metrics":["signature","expansion"],)"
      R"("scale":"small"})");
  ASSERT_TRUE(a.request.has_value());
  ASSERT_TRUE(b.request.has_value());
  // Explicit scale "small" collides with an omitted scale on a
  // small-tier server...
  EXPECT_EQ(StructuralKey(*a.request, "small"),
            StructuralKey(*b.request, "small"));
  // ...and not on a default-tier server.
  EXPECT_NE(StructuralKey(*a.request, "default"),
            StructuralKey(*b.request, "default"));
  // Ids never enter the key.
  a.request->id = "left";
  b.request->id = "right";
  EXPECT_EQ(StructuralKey(*a.request, "small"),
            StructuralKey(*b.request, "small"));
}

TEST(ServiceKeyTest, StructuralInputsSeparateKeys) {
  const ParseOutcome base = ParseRequest(R"({"topology":"Tree"})");
  ASSERT_TRUE(base.request.has_value());
  const std::string k = StructuralKey(*base.request, "small");
  for (const char* variant :
       {R"({"topology":"Mesh"})", R"({"topology":"Tree","seed":7})",
        R"({"topology":"Tree","as_nodes":99})",
        R"({"topology":"Tree","inline":false})",
        R"({"topology":"Tree","metrics":["expansion"]})"}) {
    const ParseOutcome other = ParseRequest(variant);
    ASSERT_TRUE(other.request.has_value()) << variant;
    EXPECT_NE(StructuralKey(*other.request, "small"), k) << variant;
  }
}

// --- a tiny blocking line client ---

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  // Blocks until one full line arrives ("" = connection closed first).
  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

Json MustParse(const std::string& line) {
  const std::optional<Json> doc = Json::Parse(line);
  EXPECT_TRUE(doc.has_value()) << "unparseable response: " << line;
  return doc.value_or(Json());
}

std::string Field(const Json& doc, const char* key) {
  const Json* v = doc.Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::string();
}

std::string ErrorCodeOf(const Json& doc) {
  const Json* err = doc.Find("error");
  return err != nullptr ? Field(*err, "code") : std::string();
}

// A request whose Tree topology is small enough to compute in
// milliseconds; every structural knob pinned so tests and the reference
// Session below agree on cache keys.
constexpr const char* kTinyTree =
    R"({"topology":"Tree","metrics":["expansion","signature"],)"
    R"("scale":"small","as_nodes":200})";

core::SessionOptions TinyTreeReference() {
  core::SessionOptions o = core::ScaledSessionOptions("small");
  o.roster.as_nodes = 200;
  o.journal_path.clear();
  return o;
}

void WaitForAdmitted(const Server& server, std::uint64_t n) {
  for (int i = 0; i < 2000; ++i) {
    if (server.stats().admitted >= n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "server never admitted " << n << " requests";
}

// Disarms on every exit path, so an ASSERT mid-test cannot leak an armed
// fault into the next one.
struct FaultGuard {
  explicit FaultGuard(const char* spec) { fault::ArmForTesting(spec); }
  ~FaultGuard() { fault::Disarm(); }
};

// --- socket round trip ---

TEST(ServiceServerTest, RoundTripMatchesADirectSession) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(R"({"id":"rt",)") + (kTinyTree + 1));

  const Json doc = MustParse(client.ReadLine());
  EXPECT_EQ(Field(doc, "id"), "rt");
  ASSERT_EQ(Field(doc, "status"), "ok") << "degraded/error round trip";
  const Json* figures = doc.Find("figures");
  ASSERT_NE(figures, nullptr);

  core::Session reference(TinyTreeReference());
  const core::BasicMetrics& m = reference.Metrics("Tree");
  EXPECT_EQ(Field(*figures, "signature"), m.signature.ToString());

  const Json* expansion = figures->Find("expansion");
  ASSERT_NE(expansion, nullptr);
  const Json* x = expansion->Find("x");
  const Json* y = expansion->Find("y");
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  ASSERT_EQ(x->AsArray().size(), m.expansion.x.size());
  ASSERT_EQ(y->AsArray().size(), m.expansion.y.size());
  // JsonNumber emits shortest-round-trip decimals, so the response's
  // doubles are bit-identical to the computed series.
  for (std::size_t i = 0; i < m.expansion.x.size(); ++i) {
    EXPECT_EQ(x->AsArray()[i].AsDouble(), m.expansion.x[i]);
    EXPECT_EQ(y->AsArray()[i].AsDouble(), m.expansion.y[i]);
  }
  // Only expansion and signature were requested.
  EXPECT_EQ(figures->Find("resilience"), nullptr);
  EXPECT_EQ(figures->Find("distortion"), nullptr);
}

TEST(ServiceServerTest, GarbageAndUnknownsAnswerTypedErrors) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send("this is not json");
  EXPECT_EQ(ErrorCodeOf(MustParse(client.ReadLine())), "invalid_argument");

  client.Send(R"({"id":"u1","topology":"NotInTheRoster"})");
  const Json unknown = MustParse(client.ReadLine());
  EXPECT_EQ(Field(unknown, "id"), "u1");
  EXPECT_EQ(ErrorCodeOf(unknown), "invalid_argument");

  // Figures by reference need a cache on the server; none is configured
  // in the test environment.
  client.Send(R"({"topology":"Tree","inline":false})");
  EXPECT_EQ(ErrorCodeOf(MustParse(client.ReadLine())), "invalid_argument");

  // The connection survives every rejected line.
  client.Send(std::string(R"({"id":"ok",)") + (kTinyTree + 1));
  EXPECT_EQ(Field(MustParse(client.ReadLine()), "status"), "ok");

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.parse_errors, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
}

// --- in-flight dedup ---

TEST(ServiceServerTest, ConcurrentIdenticalRequestsShareOneComputation) {
  Server server({.start_paused = true});
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  // Both requests are provably enqueued before the executor runs a thing.
  a.Send(std::string(R"({"id":"first",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);
  b.Send(std::string(R"({"id":"second",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 2);
  EXPECT_EQ(server.QueueDepthForTesting(), 1u) << "second should attach";
  server.ResumeExecutor();

  const Json ra = MustParse(a.ReadLine());
  const Json rb = MustParse(b.ReadLine());
  EXPECT_EQ(Field(ra, "id"), "first");
  EXPECT_EQ(Field(rb, "id"), "second");
  EXPECT_EQ(Field(ra, "status"), "ok");
  EXPECT_EQ(Field(rb, "status"), "ok");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.completed, 2u);
  // The cache counter is the proof of sharing: one miss (one computation)
  // answered both requests.
  const core::CacheStats cache = server.SessionCacheStats();
  EXPECT_EQ(cache.metrics_misses, 1u);
  EXPECT_EQ(cache.metrics_hits, 0u);
}

TEST(ServiceServerTest, SequentialIdenticalRequestsWarmHitInstead) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send(std::string(R"({"id":"cold",)") + (kTinyTree + 1));
  const Json cold = MustParse(client.ReadLine());
  ASSERT_EQ(Field(cold, "status"), "ok");
  const Json* cold_cached = cold.Find("cached");
  ASSERT_NE(cold_cached, nullptr);
  EXPECT_FALSE(cold_cached->AsBool());

  client.Send(std::string(R"({"id":"warm",)") + (kTinyTree + 1));
  const Json warm = MustParse(client.ReadLine());
  ASSERT_EQ(Field(warm, "status"), "ok");
  const Json* warm_cached = warm.Find("cached");
  ASSERT_NE(warm_cached, nullptr);
  EXPECT_TRUE(warm_cached->AsBool());
  EXPECT_EQ(server.stats().deduped, 0u) << "not concurrent, so not deduped";
  EXPECT_EQ(server.SessionCacheStats().metrics_misses, 1u);
}

// --- deadlines ---

TEST(ServiceServerTest, DeadlineExpiredInQueueDegradesWithoutComputing) {
  Server server({.start_paused = true});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  std::string request(kTinyTree);
  request.insert(1, R"("id":"dl","deadline_ms":1,)");
  client.Send(request);
  WaitForAdmitted(server, 1);
  // The 1ms budget dies here, while the request is still queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.ResumeExecutor();

  const Json doc = MustParse(client.ReadLine());
  EXPECT_EQ(Field(doc, "id"), "dl");
  EXPECT_EQ(Field(doc, "status"), "degraded");
  const Json* degraded = doc.Find("degraded");
  ASSERT_NE(degraded, nullptr);
  ASSERT_EQ(degraded->AsArray().size(), 1u);
  const Json& entry = degraded->AsArray()[0];
  EXPECT_EQ(Field(entry, "kind"), "request");
  EXPECT_EQ(Field(entry, "code"), "cancelled");
  // Nothing was computed for it.
  EXPECT_EQ(server.SessionCacheStats().metrics_misses, 0u);
  EXPECT_EQ(doc.Find("figures")->AsObject().size(), 0u);
}

// A fully-expired job must leave the inflight map in the same critical
// section that decides not to compute. The old two-section version had a
// window (during the unlocked sends to expired waiters) where an
// identical request could dedup-attach to a job about to be erased
// without re-enqueueing -- that waiter was never answered. The delay
// fault pins the executor inside that exact window.
TEST(ServiceServerTest, ExpiredJobRetiresBeforeALateDuplicateCanAttach) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.respond@kind=delay,ms=200,match=late1");
  Server server({.start_paused = true});
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  std::string request(kTinyTree);
  request.insert(1, R"("id":"late1","deadline_ms":1,)");
  a.Send(request);
  WaitForAdmitted(server, 1);
  // Let the 1ms budget die while the request is still queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.ResumeExecutor();
  // completed is bumped just before the (200ms-delayed, unlocked) send to
  // the expired waiter, so once it reads 1 the executor sits inside the
  // window.
  for (int i = 0; i < 2000 && server.stats().completed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().completed, 1u);
  // An identical request arriving now must start a fresh job, not attach
  // to the one being retired (which would hang this client forever).
  b.Send(std::string(R"({"id":"late2",)") + (kTinyTree + 1));

  const Json expired = MustParse(a.ReadLine());
  EXPECT_EQ(Field(expired, "id"), "late1");
  EXPECT_EQ(Field(expired, "status"), "degraded");
  const Json fresh = MustParse(b.ReadLine());
  EXPECT_EQ(Field(fresh, "id"), "late2");
  EXPECT_EQ(Field(fresh, "status"), "ok");
  EXPECT_EQ(server.stats().completed, 2u);
}

// A waiter that dedup-attaches while its job is already executing was
// admitted *after* the execution clock started; its queue wait is zero,
// not a negative duration wrapped to ~1.8e19ns (which used to poison
// queue_us and the service.queue_wait_ns histogram).
TEST(ServiceServerTest, LateAttachedWaiterReportsZeroQueueWait) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  // Hold the executor inside the Tree generation so the second request
  // provably attaches mid-execution.
  const FaultGuard guard("gen.validate@kind=delay,ms=300,match=Tree");
  Server server;
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  a.Send(std::string(R"({"id":"early",)") + (kTinyTree + 1));
  for (int i = 0; i < 2000 && fault::FiredCount("gen.validate") < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fault::FiredCount("gen.validate"), 1u)
      << "executor never reached the Tree generation";
  b.Send(std::string(R"({"id":"late",)") + (kTinyTree + 1));

  const Json ra = MustParse(a.ReadLine());
  const Json rb = MustParse(b.ReadLine());
  ASSERT_EQ(Field(ra, "status"), "ok");
  ASSERT_EQ(Field(rb, "status"), "ok");
  EXPECT_EQ(server.stats().deduped, 1u) << "late must have attached";
  const Json* queue_us = rb.Find("queue_us");
  ASSERT_NE(queue_us, nullptr);
  EXPECT_EQ(queue_us->AsDouble(), 0.0);
}

// --- connection reaping ---

TEST(ServiceServerTest, FinishedConnectionsAreReaped) {
  Server server;
  server.Start();
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    client.Send(std::string(R"({"id":"bye",)") + (kTinyTree + 1));
    EXPECT_EQ(Field(MustParse(client.ReadLine()), "status"), "ok");
  }  // disconnect: the reader closes its end; the acceptor's sweep reaps it
  for (int i = 0; i < 4000 && server.LiveConnectionCountForTesting() > 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.LiveConnectionCountForTesting(), 0u);
  EXPECT_EQ(server.stats().connections, 1u) << "reaping must not uncount";
}

// --- admission-queue bound ---

TEST(ServiceServerTest, QueueOverflowAnswersQueueFull) {
  Server server({.queue_limit = 1, .start_paused = true});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send(std::string(R"({"id":"q1","seed":101,)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);
  // A *different* structural key cannot attach to q1's job, and the
  // one-slot queue is full.
  client.Send(std::string(R"({"id":"q2","seed":102,)") + (kTinyTree + 1));
  const Json rejected = MustParse(client.ReadLine());
  EXPECT_EQ(Field(rejected, "id"), "q2");
  EXPECT_EQ(ErrorCodeOf(rejected), "queue_full");
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);

  server.ResumeExecutor();
  const Json served = MustParse(client.ReadLine());
  EXPECT_EQ(Field(served, "id"), "q1");
  EXPECT_EQ(Field(served, "status"), "ok");
}

// --- draining ---

TEST(ServiceServerTest, StopAnswersEverythingAdmitted) {
  Server server({.start_paused = true});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(R"({"id":"drain1",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);

  // Stop() unpauses, drains the queue, then joins -- the admitted request
  // must still be answered.
  std::thread stopper([&server] { server.Stop(); });
  const Json doc = MustParse(client.ReadLine());
  stopper.join();
  EXPECT_EQ(Field(doc, "id"), "drain1");
  EXPECT_EQ(Field(doc, "status"), "ok");
  EXPECT_EQ(server.stats().completed, 1u);
}

// --- executor pool: affinity and cross-lane dedup ---

// Identical requests admitted concurrently on a 4-lane pool still share
// one computation: the inflight map is global, and session affinity
// guarantees equal keys route to the same lane, so the proof is the same
// as the single-executor case -- exactly one cache miss -- plus the lane
// counters showing every job ran on the one lane LaneForKey names.
TEST(ServicePoolTest, AffinityDedupsAcrossTheWholePool) {
  Server server({.executors = 4, .start_paused = true});
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  a.Send(std::string(R"({"id":"first",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);
  b.Send(std::string(R"({"id":"second",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 2);
  EXPECT_EQ(server.QueueDepthForTesting(), 1u) << "second should attach";
  server.ResumeExecutor();

  EXPECT_EQ(Field(MustParse(a.ReadLine()), "status"), "ok");
  EXPECT_EQ(Field(MustParse(b.ReadLine()), "status"), "ok");
  EXPECT_EQ(server.stats().deduped, 1u);
  EXPECT_EQ(server.SessionCacheStats().metrics_misses, 1u);

  // kTinyTree's roster is scale small, default seed, as_nodes 200.
  const std::size_t expected_lane = LaneForKey("small|0|200|0|0", 4);
  const std::vector<std::uint64_t> jobs = server.ExecutorJobCountsForTesting();
  ASSERT_EQ(jobs.size(), 4u);
  for (std::size_t lane = 0; lane < jobs.size(); ++lane) {
    EXPECT_EQ(jobs[lane], lane == expected_lane ? 1u : 0u)
        << "job ran on lane " << lane;
  }
}

// --- protocol /2: streamed frames, keep-alive, out-of-order ids ---

// Reads /2 frames off `client` until a final (more:false) frame arrives;
// returns every frame of that one response in order. Frames of *other*
// in-flight responses on the same connection are appended to `strays`.
std::vector<Json> ReadV2Response(Client& client, std::string* final_id,
                                 std::vector<std::string>* strays = nullptr) {
  std::vector<Json> frames;
  for (int i = 0; i < 10000; ++i) {
    const std::string line = client.ReadLine();
    if (line.empty()) break;  // connection closed
    const Json doc = MustParse(line);
    const Json* more = doc.Find("more");
    if (more == nullptr) {
      if (strays != nullptr) strays->push_back(line);
      continue;
    }
    frames.push_back(doc);
    if (!more->AsBool()) {
      if (final_id != nullptr) *final_id = Field(doc, "id");
      return frames;
    }
  }
  return frames;
}

TEST(ServiceStreamTest, V2ResponseReassemblesToTheV1Figures) {
  Server server({.stream_chunk_points = 4});  // force multi-chunk figures
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(R"({"v":2,"id":"s1",)") + (kTinyTree + 1));

  std::string id;
  const std::vector<Json> frames = ReadV2Response(client, &id);
  ASSERT_GE(frames.size(), 2u) << "expected chunk frames before the final";
  EXPECT_EQ(id, "s1");

  // Chunks carry v/id/seq and arrive in sequence order.
  std::vector<double> x, y;
  for (std::size_t i = 0; i + 1 < frames.size(); ++i) {
    const Json& f = frames[i];
    EXPECT_EQ(f.Find("v")->AsDouble(), 2.0);
    EXPECT_EQ(Field(f, "id"), "s1");
    EXPECT_EQ(f.Find("seq")->AsDouble(), static_cast<double>(i));
    if (Field(f, "figure") == "expansion") {
      for (const Json& v : f.Find("x")->AsArray()) x.push_back(v.AsDouble());
      for (const Json& v : f.Find("y")->AsArray()) y.push_back(v.AsDouble());
    }
  }
  // The final frame is the /1 body minus the streamed series; the
  // chunk-reassembled series must equal what a direct Session computes.
  const Json& last = frames.back();
  EXPECT_EQ(Field(last, "status"), "ok");
  core::Session reference(TinyTreeReference());
  const core::BasicMetrics& m = reference.Metrics("Tree");
  const Json* figures = last.Find("figures");
  ASSERT_NE(figures, nullptr);
  EXPECT_EQ(Field(*figures, "signature"), m.signature.ToString());
  ASSERT_EQ(x.size(), m.expansion.x.size());
  ASSERT_EQ(y.size(), m.expansion.y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i], m.expansion.x[i]);
    EXPECT_EQ(y[i], m.expansion.y[i]);
  }
}

// One keep-alive /2 connection, two requests whose rosters hash to
// different lanes: the second (fast) request's response overtakes the
// first (pinned in its lane by a delay fault), and the client re-sorts
// them by id. This is the wire-level payoff of the executor pool.
TEST(ServiceStreamTest, OutOfOrderResponsesCorrelateById) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("gen.validate@kind=delay,ms=400,match=Tree");
  Server server({.executors = 2});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  // Pick a roster for the fast request that provably lands on the other
  // lane than kTinyTree's (small|0|200|0|0) at two executors.
  const std::size_t slow_lane = LaneForKey("small|0|200|0|0", 2);
  int fast_nodes = 201;
  while (LaneForKey("small|0|" + std::to_string(fast_nodes) + "|0|0", 2) ==
         slow_lane) {
    ++fast_nodes;
  }

  const std::string fast_body =
      R"("topology":"Mesh","metrics":["signature"],)"
      R"("scale":"small","as_nodes":)" +
      std::to_string(fast_nodes) + "}";

  // Prime the fast lane: the overtake below must be a warm cache hit
  // (microseconds), not a cold Mesh generation that could outlast the
  // slow request's injected delay.
  client.Send(R"({"v":2,"id":"prime",)" + fast_body);
  std::string prime_id;
  ASSERT_FALSE(ReadV2Response(client, &prime_id).empty());
  ASSERT_EQ(prime_id, "prime");

  client.Send(std::string(R"({"v":2,"id":"slow",)") + (kTinyTree + 1));
  for (int i = 0; i < 2000 && fault::FiredCount("gen.validate") < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fault::FiredCount("gen.validate"), 1u)
      << "slow request never reached the Tree generation";
  client.Send(R"({"v":2,"id":"fast",)" + fast_body);

  std::string first_id, second_id;
  const std::vector<Json> first = ReadV2Response(client, &first_id);
  const std::vector<Json> second = ReadV2Response(client, &second_id);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(first_id, "fast") << "fast response should overtake the slow one";
  EXPECT_EQ(second_id, "slow");
  EXPECT_EQ(Field(first.back(), "status"), "ok");
  EXPECT_EQ(Field(second.back(), "status"), "ok");

  const std::vector<std::uint64_t> jobs = server.ExecutorJobCountsForTesting();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[slow_lane], 1u) << "the Tree job alone ran on its lane";
  EXPECT_EQ(jobs[1 - slow_lane], 2u) << "prime + fast ran on the other lane";
}

// The connection's protocol version is fixed by its first request; mixing
// versions afterwards is a typed error, answered at the negotiated
// version (here: wrapped in a /2 final frame).
TEST(ServiceStreamTest, VersionIsFixedPerConnection) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send(std::string(R"({"v":2,"id":"first",)") + (kTinyTree + 1));
  std::string id;
  ASSERT_FALSE(ReadV2Response(client, &id).empty());
  EXPECT_EQ(id, "first");

  client.Send(std::string(R"({"id":"mixed",)") + (kTinyTree + 1));
  const Json err = MustParse(client.ReadLine());
  EXPECT_EQ(err.Find("more")->AsBool(), false) << "error must be /2-framed";
  EXPECT_EQ(ErrorCodeOf(err), "invalid_argument");

  // An unknown version is rejected on the first line too.
  Client fresh(server.port());
  ASSERT_TRUE(fresh.connected());
  fresh.Send(std::string(R"({"v":3,"id":"v3",)") + (kTinyTree + 1));
  EXPECT_EQ(ErrorCodeOf(MustParse(fresh.ReadLine())), "invalid_argument");
}

// A client that disconnects mid-stream only costs its own remaining
// sends; the lane keeps serving. The tiny chunk size guarantees the
// response is actually multi-frame, so the disconnect lands mid-response.
TEST(ServiceStreamTest, MidStreamDisconnectDoesNotWedgeTheLane) {
  Server server({.executors = 1, .stream_chunk_points = 2});
  server.Start();
  {
    Client doomed(server.port());
    ASSERT_TRUE(doomed.connected());
    doomed.Send(std::string(R"({"v":2,"id":"gone",)") + (kTinyTree + 1));
    const std::string first = doomed.ReadLine();
    ASSERT_FALSE(first.empty());
    EXPECT_NE(first.find("\"more\":true"), std::string::npos);
  }  // socket closes with most of the stream unsent

  // The same lane (executors=1: there is only one) serves the next
  // client's request to completion.
  Client next(server.port());
  ASSERT_TRUE(next.connected());
  next.Send(std::string(R"({"id":"after",)") + (kTinyTree + 1));
  const Json doc = MustParse(next.ReadLine());
  EXPECT_EQ(Field(doc, "id"), "after");
  EXPECT_EQ(Field(doc, "status"), "ok");
}

// --- /1 serialization is independent of the pool size ---

// The response bytes may differ only in the timing fields; everything
// else -- field order included -- must be identical whether one executor
// or four serve the request. Guards the /1 byte-compatibility contract.
TEST(ServicePoolTest, V1ResponseBytesIndependentOfExecutorCount) {
  auto serve_once = [](std::size_t executors) {
    Server server({.executors = executors});
    server.Start();
    Client client(server.port());
    EXPECT_TRUE(client.connected());
    client.Send(std::string(R"({"id":"bytes",)") + (kTinyTree + 1));
    std::string line = client.ReadLine();
    server.Stop();
    return line;
  };
  std::string one = serve_once(1);
  std::string four = serve_once(4);
  ASSERT_FALSE(one.empty());
  ASSERT_FALSE(four.empty());
  for (const char* field : {"\"queue_us\":", "\"elapsed_us\":"}) {
    for (std::string* line : {&one, &four}) {
      const std::size_t at = line->find(field);
      ASSERT_NE(at, std::string::npos) << *line;
      std::size_t digits = at + std::string(field).size();
      std::size_t end = digits;
      while (end < line->size() && std::isdigit((*line)[end]) != 0) ++end;
      line->replace(digits, end - digits, "0");
    }
  }
  EXPECT_EQ(one, four);
}

// --- ServerOptions::FromEnv ---

TEST(ServiceOptionsTest, FromEnvReadsTheRegistry) {
  ::setenv("TOPOGEN_SERVICE_PORT", "7171", 1);
  ::setenv("TOPOGEN_SERVICE_QUEUE", "9", 1);
  ::setenv("TOPOGEN_SERVICE_EXECUTORS", "5", 1);
  ::setenv("TOPOGEN_SERVICE_MAX_SESSIONS", "7", 1);
  obs::Env::ResetForTesting();
  const ServerOptions opts = ServerOptions::FromEnv();
  EXPECT_EQ(opts.port, 7171);
  EXPECT_EQ(opts.queue_limit, 9u);
  EXPECT_EQ(opts.executors, 5u);
  EXPECT_EQ(opts.max_sessions, 7u);

  // Out-of-range values fall back to the default instead of crashing
  // the daemon at boot (EnvIntOr's registry-wide contract).
  ::setenv("TOPOGEN_SERVICE_EXECUTORS", "0", 1);
  obs::Env::ResetForTesting();
  EXPECT_EQ(ServerOptions::FromEnv().executors, 2u);

  ::unsetenv("TOPOGEN_SERVICE_PORT");
  ::unsetenv("TOPOGEN_SERVICE_QUEUE");
  ::unsetenv("TOPOGEN_SERVICE_EXECUTORS");
  ::unsetenv("TOPOGEN_SERVICE_MAX_SESSIONS");
  obs::Env::ResetForTesting();
}

}  // namespace
}  // namespace topogen::service
