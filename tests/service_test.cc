// topogend's server core: protocol parsing, admission, in-flight dedup,
// deadlines, and the end-to-end socket round trip (docs/SERVICE.md).
//
// Server tests bind an ephemeral loopback port per test; the roster
// overrides keep every computed topology tiny so the suite stays fast.
#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scale.h"
#include "core/session.h"
#include "fault/fault.h"
#include "obs/json.h"
#include "service/protocol.h"

namespace topogen::service {
namespace {

using obs::Json;

// --- request parsing ---

TEST(ServiceParseTest, MinimalRequestGetsDefaultMetrics) {
  const ParseOutcome out = ParseRequest(R"({"topology":"Tree"})");
  ASSERT_TRUE(out.request.has_value());
  EXPECT_EQ(out.request->topology, "Tree");
  EXPECT_EQ(out.request->metrics.size(), 4u);
  EXPECT_TRUE(out.request->wants("expansion"));
  EXPECT_TRUE(out.request->wants("signature"));
  EXPECT_FALSE(out.request->wants("linkvalue"));
  EXPECT_TRUE(out.request->inline_figures);
  EXPECT_EQ(out.request->deadline_ms, 0);
}

TEST(ServiceParseTest, FullRequestRoundTrips) {
  const ParseOutcome out = ParseRequest(
      R"({"id":"q1","topology":"PLRG","metrics":["linkvalue","expansion"],)"
      R"("use_policy":false,"inline":false,"scale":"small","seed":7,)"
      R"("deadline_ms":2500,"plrg_nodes":500})");
  ASSERT_TRUE(out.request.has_value()) << out.error;
  const Request& r = *out.request;
  EXPECT_EQ(r.id, "q1");
  EXPECT_EQ(r.topology, "PLRG");
  EXPECT_TRUE(r.wants("linkvalue"));
  EXPECT_TRUE(r.wants("expansion"));
  EXPECT_FALSE(r.wants("resilience"));
  EXPECT_FALSE(r.inline_figures);
  EXPECT_EQ(r.scale, "small");
  EXPECT_EQ(r.seed, 7u);
  EXPECT_EQ(r.deadline_ms, 2500);
  EXPECT_EQ(r.plrg_nodes, 500u);
}

struct BadLine {
  const char* line;
  const char* why;
};

TEST(ServiceParseTest, MalformedLinesAreRejectedNotGuessed) {
  const BadLine cases[] = {
      {"", "empty line"},
      {"{", "truncated JSON"},
      {R"({"topology":"Tree")", "unterminated object"},
      {"[1,2,3]", "not an object"},
      {"42", "bare number"},
      {R"({"metrics":["expansion"]})", "missing topology"},
      {R"({"topology":""})", "empty topology"},
      {R"({"topology":17})", "non-string topology"},
      {R"({"topology":"Tree","metrics":[]})", "empty metrics"},
      {R"({"topology":"Tree","metrics":["bogus"]})", "unknown metric"},
      {R"({"topology":"Tree","metrics":[3]})", "non-string metric"},
      {R"({"topology":"Tree","frobnicate":1})", "unknown field"},
      {R"({"topology":"Tree","seed":0})", "zero seed"},
      {R"({"topology":"Tree","seed":-4})", "negative seed"},
      {R"({"topology":"Tree","seed":1.5})", "fractional seed"},
      {R"({"topology":"Tree","deadline_ms":0})", "zero deadline"},
      {R"({"topology":"Tree","deadline_ms":99999999999})", "huge deadline"},
      {R"({"topology":"Tree","scale":"huge"})", "unknown scale"},
      {R"({"topology":"Tree","as_nodes":0})", "zero roster size"},
      {R"({"topology":"Tree","inline":"yes"})", "non-bool inline"},
      {R"({"topology":"Tree","use_policy":1})", "non-bool use_policy"},
  };
  for (const BadLine& c : cases) {
    const ParseOutcome out = ParseRequest(c.line);
    EXPECT_FALSE(out.request.has_value()) << c.why;
    EXPECT_FALSE(out.error.empty()) << c.why;
  }
}

TEST(ServiceParseTest, UnknownMetricNamesTheOffender) {
  const ParseOutcome out =
      ParseRequest(R"({"topology":"Tree","metrics":["expansion","girth"]})");
  ASSERT_FALSE(out.request.has_value());
  EXPECT_NE(out.error.find("girth"), std::string::npos) << out.error;
}

TEST(ServiceParseTest, OversizedRosterIsRejectedWithTheCap) {
  const ParseOutcome out =
      ParseRequest(R"({"topology":"PLRG","plrg_nodes":2000000})");
  ASSERT_FALSE(out.request.has_value());
  EXPECT_NE(out.error.find("oversized roster"), std::string::npos)
      << out.error;
}

TEST(ServiceParseTest, ErrorsStillRecoverTheClientId) {
  const ParseOutcome out = ParseRequest(R"({"id":"x9","metrics":["nope"]})");
  EXPECT_FALSE(out.request.has_value());
  EXPECT_EQ(out.id, "x9");
}

TEST(ServiceParseTest, DuplicateMetricsCollapse) {
  const ParseOutcome out = ParseRequest(
      R"({"topology":"Tree","metrics":["expansion","expansion"]})");
  ASSERT_TRUE(out.request.has_value());
  EXPECT_EQ(out.request->metrics.size(), 1u);
}

TEST(ServiceParseTest, OverlongLineIsRejected) {
  std::string line = R"({"topology":"Tree","id":")";
  line += std::string(kMaxRequestBytes, 'a');
  line += "\"}";
  const ParseOutcome out = ParseRequest(line);
  EXPECT_FALSE(out.request.has_value());
}

// --- the dedup key ---

TEST(ServiceKeyTest, MetricOrderAndDefaultScaleCanonicalize) {
  ParseOutcome a = ParseRequest(
      R"({"topology":"Tree","metrics":["expansion","signature"]})");
  ParseOutcome b = ParseRequest(
      R"({"topology":"Tree","metrics":["signature","expansion"],)"
      R"("scale":"small"})");
  ASSERT_TRUE(a.request.has_value());
  ASSERT_TRUE(b.request.has_value());
  // Explicit scale "small" collides with an omitted scale on a
  // small-tier server...
  EXPECT_EQ(StructuralKey(*a.request, "small"),
            StructuralKey(*b.request, "small"));
  // ...and not on a default-tier server.
  EXPECT_NE(StructuralKey(*a.request, "default"),
            StructuralKey(*b.request, "default"));
  // Ids never enter the key.
  a.request->id = "left";
  b.request->id = "right";
  EXPECT_EQ(StructuralKey(*a.request, "small"),
            StructuralKey(*b.request, "small"));
}

TEST(ServiceKeyTest, StructuralInputsSeparateKeys) {
  const ParseOutcome base = ParseRequest(R"({"topology":"Tree"})");
  ASSERT_TRUE(base.request.has_value());
  const std::string k = StructuralKey(*base.request, "small");
  for (const char* variant :
       {R"({"topology":"Mesh"})", R"({"topology":"Tree","seed":7})",
        R"({"topology":"Tree","as_nodes":99})",
        R"({"topology":"Tree","inline":false})",
        R"({"topology":"Tree","metrics":["expansion"]})"}) {
    const ParseOutcome other = ParseRequest(variant);
    ASSERT_TRUE(other.request.has_value()) << variant;
    EXPECT_NE(StructuralKey(*other.request, "small"), k) << variant;
  }
}

// --- a tiny blocking line client ---

class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  // Blocks until one full line arrives ("" = connection closed first).
  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

Json MustParse(const std::string& line) {
  const std::optional<Json> doc = Json::Parse(line);
  EXPECT_TRUE(doc.has_value()) << "unparseable response: " << line;
  return doc.value_or(Json());
}

std::string Field(const Json& doc, const char* key) {
  const Json* v = doc.Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::string();
}

std::string ErrorCodeOf(const Json& doc) {
  const Json* err = doc.Find("error");
  return err != nullptr ? Field(*err, "code") : std::string();
}

// A request whose Tree topology is small enough to compute in
// milliseconds; every structural knob pinned so tests and the reference
// Session below agree on cache keys.
constexpr const char* kTinyTree =
    R"({"topology":"Tree","metrics":["expansion","signature"],)"
    R"("scale":"small","as_nodes":200})";

core::SessionOptions TinyTreeReference() {
  core::SessionOptions o = core::ScaledSessionOptions("small");
  o.roster.as_nodes = 200;
  o.journal_path.clear();
  return o;
}

void WaitForAdmitted(const Server& server, std::uint64_t n) {
  for (int i = 0; i < 2000; ++i) {
    if (server.stats().admitted >= n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "server never admitted " << n << " requests";
}

// Disarms on every exit path, so an ASSERT mid-test cannot leak an armed
// fault into the next one.
struct FaultGuard {
  explicit FaultGuard(const char* spec) { fault::ArmForTesting(spec); }
  ~FaultGuard() { fault::Disarm(); }
};

// --- socket round trip ---

TEST(ServiceServerTest, RoundTripMatchesADirectSession) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(R"({"id":"rt",)") + (kTinyTree + 1));

  const Json doc = MustParse(client.ReadLine());
  EXPECT_EQ(Field(doc, "id"), "rt");
  ASSERT_EQ(Field(doc, "status"), "ok") << "degraded/error round trip";
  const Json* figures = doc.Find("figures");
  ASSERT_NE(figures, nullptr);

  core::Session reference(TinyTreeReference());
  const core::BasicMetrics& m = reference.Metrics("Tree");
  EXPECT_EQ(Field(*figures, "signature"), m.signature.ToString());

  const Json* expansion = figures->Find("expansion");
  ASSERT_NE(expansion, nullptr);
  const Json* x = expansion->Find("x");
  const Json* y = expansion->Find("y");
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  ASSERT_EQ(x->AsArray().size(), m.expansion.x.size());
  ASSERT_EQ(y->AsArray().size(), m.expansion.y.size());
  // JsonNumber emits shortest-round-trip decimals, so the response's
  // doubles are bit-identical to the computed series.
  for (std::size_t i = 0; i < m.expansion.x.size(); ++i) {
    EXPECT_EQ(x->AsArray()[i].AsDouble(), m.expansion.x[i]);
    EXPECT_EQ(y->AsArray()[i].AsDouble(), m.expansion.y[i]);
  }
  // Only expansion and signature were requested.
  EXPECT_EQ(figures->Find("resilience"), nullptr);
  EXPECT_EQ(figures->Find("distortion"), nullptr);
}

TEST(ServiceServerTest, GarbageAndUnknownsAnswerTypedErrors) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send("this is not json");
  EXPECT_EQ(ErrorCodeOf(MustParse(client.ReadLine())), "invalid_argument");

  client.Send(R"({"id":"u1","topology":"NotInTheRoster"})");
  const Json unknown = MustParse(client.ReadLine());
  EXPECT_EQ(Field(unknown, "id"), "u1");
  EXPECT_EQ(ErrorCodeOf(unknown), "invalid_argument");

  // Figures by reference need a cache on the server; none is configured
  // in the test environment.
  client.Send(R"({"topology":"Tree","inline":false})");
  EXPECT_EQ(ErrorCodeOf(MustParse(client.ReadLine())), "invalid_argument");

  // The connection survives every rejected line.
  client.Send(std::string(R"({"id":"ok",)") + (kTinyTree + 1));
  EXPECT_EQ(Field(MustParse(client.ReadLine()), "status"), "ok");

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.parse_errors, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
}

// --- in-flight dedup ---

TEST(ServiceServerTest, ConcurrentIdenticalRequestsShareOneComputation) {
  Server server({.start_paused = true});
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  // Both requests are provably enqueued before the executor runs a thing.
  a.Send(std::string(R"({"id":"first",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);
  b.Send(std::string(R"({"id":"second",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 2);
  EXPECT_EQ(server.QueueDepthForTesting(), 1u) << "second should attach";
  server.ResumeExecutor();

  const Json ra = MustParse(a.ReadLine());
  const Json rb = MustParse(b.ReadLine());
  EXPECT_EQ(Field(ra, "id"), "first");
  EXPECT_EQ(Field(rb, "id"), "second");
  EXPECT_EQ(Field(ra, "status"), "ok");
  EXPECT_EQ(Field(rb, "status"), "ok");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.completed, 2u);
  // The cache counter is the proof of sharing: one miss (one computation)
  // answered both requests.
  const core::CacheStats cache = server.SessionCacheStats();
  EXPECT_EQ(cache.metrics_misses, 1u);
  EXPECT_EQ(cache.metrics_hits, 0u);
}

TEST(ServiceServerTest, SequentialIdenticalRequestsWarmHitInstead) {
  Server server;
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send(std::string(R"({"id":"cold",)") + (kTinyTree + 1));
  const Json cold = MustParse(client.ReadLine());
  ASSERT_EQ(Field(cold, "status"), "ok");
  const Json* cold_cached = cold.Find("cached");
  ASSERT_NE(cold_cached, nullptr);
  EXPECT_FALSE(cold_cached->AsBool());

  client.Send(std::string(R"({"id":"warm",)") + (kTinyTree + 1));
  const Json warm = MustParse(client.ReadLine());
  ASSERT_EQ(Field(warm, "status"), "ok");
  const Json* warm_cached = warm.Find("cached");
  ASSERT_NE(warm_cached, nullptr);
  EXPECT_TRUE(warm_cached->AsBool());
  EXPECT_EQ(server.stats().deduped, 0u) << "not concurrent, so not deduped";
  EXPECT_EQ(server.SessionCacheStats().metrics_misses, 1u);
}

// --- deadlines ---

TEST(ServiceServerTest, DeadlineExpiredInQueueDegradesWithoutComputing) {
  Server server({.start_paused = true});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  std::string request(kTinyTree);
  request.insert(1, R"("id":"dl","deadline_ms":1,)");
  client.Send(request);
  WaitForAdmitted(server, 1);
  // The 1ms budget dies here, while the request is still queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.ResumeExecutor();

  const Json doc = MustParse(client.ReadLine());
  EXPECT_EQ(Field(doc, "id"), "dl");
  EXPECT_EQ(Field(doc, "status"), "degraded");
  const Json* degraded = doc.Find("degraded");
  ASSERT_NE(degraded, nullptr);
  ASSERT_EQ(degraded->AsArray().size(), 1u);
  const Json& entry = degraded->AsArray()[0];
  EXPECT_EQ(Field(entry, "kind"), "request");
  EXPECT_EQ(Field(entry, "code"), "cancelled");
  // Nothing was computed for it.
  EXPECT_EQ(server.SessionCacheStats().metrics_misses, 0u);
  EXPECT_EQ(doc.Find("figures")->AsObject().size(), 0u);
}

// A fully-expired job must leave the inflight map in the same critical
// section that decides not to compute. The old two-section version had a
// window (during the unlocked sends to expired waiters) where an
// identical request could dedup-attach to a job about to be erased
// without re-enqueueing -- that waiter was never answered. The delay
// fault pins the executor inside that exact window.
TEST(ServiceServerTest, ExpiredJobRetiresBeforeALateDuplicateCanAttach) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.respond@kind=delay,ms=200,match=late1");
  Server server({.start_paused = true});
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  std::string request(kTinyTree);
  request.insert(1, R"("id":"late1","deadline_ms":1,)");
  a.Send(request);
  WaitForAdmitted(server, 1);
  // Let the 1ms budget die while the request is still queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.ResumeExecutor();
  // completed is bumped just before the (200ms-delayed, unlocked) send to
  // the expired waiter, so once it reads 1 the executor sits inside the
  // window.
  for (int i = 0; i < 2000 && server.stats().completed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().completed, 1u);
  // An identical request arriving now must start a fresh job, not attach
  // to the one being retired (which would hang this client forever).
  b.Send(std::string(R"({"id":"late2",)") + (kTinyTree + 1));

  const Json expired = MustParse(a.ReadLine());
  EXPECT_EQ(Field(expired, "id"), "late1");
  EXPECT_EQ(Field(expired, "status"), "degraded");
  const Json fresh = MustParse(b.ReadLine());
  EXPECT_EQ(Field(fresh, "id"), "late2");
  EXPECT_EQ(Field(fresh, "status"), "ok");
  EXPECT_EQ(server.stats().completed, 2u);
}

// A waiter that dedup-attaches while its job is already executing was
// admitted *after* the execution clock started; its queue wait is zero,
// not a negative duration wrapped to ~1.8e19ns (which used to poison
// queue_us and the service.queue_wait_ns histogram).
TEST(ServiceServerTest, LateAttachedWaiterReportsZeroQueueWait) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  // Hold the executor inside the Tree generation so the second request
  // provably attaches mid-execution.
  const FaultGuard guard("gen.validate@kind=delay,ms=300,match=Tree");
  Server server;
  server.Start();
  Client a(server.port());
  Client b(server.port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());

  a.Send(std::string(R"({"id":"early",)") + (kTinyTree + 1));
  for (int i = 0; i < 2000 && fault::FiredCount("gen.validate") < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(fault::FiredCount("gen.validate"), 1u)
      << "executor never reached the Tree generation";
  b.Send(std::string(R"({"id":"late",)") + (kTinyTree + 1));

  const Json ra = MustParse(a.ReadLine());
  const Json rb = MustParse(b.ReadLine());
  ASSERT_EQ(Field(ra, "status"), "ok");
  ASSERT_EQ(Field(rb, "status"), "ok");
  EXPECT_EQ(server.stats().deduped, 1u) << "late must have attached";
  const Json* queue_us = rb.Find("queue_us");
  ASSERT_NE(queue_us, nullptr);
  EXPECT_EQ(queue_us->AsDouble(), 0.0);
}

// --- connection reaping ---

TEST(ServiceServerTest, FinishedConnectionsAreReaped) {
  Server server;
  server.Start();
  {
    Client client(server.port());
    ASSERT_TRUE(client.connected());
    client.Send(std::string(R"({"id":"bye",)") + (kTinyTree + 1));
    EXPECT_EQ(Field(MustParse(client.ReadLine()), "status"), "ok");
  }  // disconnect: the reader closes its end; the acceptor's sweep reaps it
  for (int i = 0; i < 4000 && server.LiveConnectionCountForTesting() > 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.LiveConnectionCountForTesting(), 0u);
  EXPECT_EQ(server.stats().connections, 1u) << "reaping must not uncount";
}

// --- admission-queue bound ---

TEST(ServiceServerTest, QueueOverflowAnswersQueueFull) {
  Server server({.queue_limit = 1, .start_paused = true});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());

  client.Send(std::string(R"({"id":"q1","seed":101,)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);
  // A *different* structural key cannot attach to q1's job, and the
  // one-slot queue is full.
  client.Send(std::string(R"({"id":"q2","seed":102,)") + (kTinyTree + 1));
  const Json rejected = MustParse(client.ReadLine());
  EXPECT_EQ(Field(rejected, "id"), "q2");
  EXPECT_EQ(ErrorCodeOf(rejected), "queue_full");
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);

  server.ResumeExecutor();
  const Json served = MustParse(client.ReadLine());
  EXPECT_EQ(Field(served, "id"), "q1");
  EXPECT_EQ(Field(served, "status"), "ok");
}

// --- draining ---

TEST(ServiceServerTest, StopAnswersEverythingAdmitted) {
  Server server({.start_paused = true});
  server.Start();
  Client client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(R"({"id":"drain1",)") + (kTinyTree + 1));
  WaitForAdmitted(server, 1);

  // Stop() unpauses, drains the queue, then joins -- the admitted request
  // must still be answered.
  std::thread stopper([&server] { server.Stop(); });
  const Json doc = MustParse(client.ReadLine());
  stopper.join();
  EXPECT_EQ(Field(doc, "id"), "drain1");
  EXPECT_EQ(Field(doc, "status"), "ok");
  EXPECT_EQ(server.stats().completed, 1u);
}

}  // namespace
}  // namespace topogen::service
