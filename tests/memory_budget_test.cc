// Process-wide memory budget (src/core/memory_budget.h): advisory
// charge/release accounting, per-category ledgers, the pressure
// predicate and its edge behavior, and the session-pool eviction that
// relieves pressure (docs/ROBUSTNESS.md, "Memory budgets").
//
// MemoryBudget is a process-wide singleton, so every test restores the
// budget to 0 (unlimited) and zeroes the charges on exit -- a leaked
// budget would degrade unrelated service tests to sampled estimators.
#include "core/memory_budget.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scale.h"
#include "core/session_pool.h"

namespace topogen::core {
namespace {

class MemoryBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MemoryBudget::Get().SetBudgetForTesting(0);
    MemoryBudget::Get().ResetChargesForTesting();
  }
  void TearDown() override {
    MemoryBudget::Get().SetBudgetForTesting(0);
    MemoryBudget::Get().ResetChargesForTesting();
  }
};

TEST_F(MemoryBudgetTest, ChargesAccumulatePerCategoryAndInTotal) {
  MemoryBudget& b = MemoryBudget::Get();
  b.Charge(MemCategory::kTopology, 100);
  b.Charge(MemCategory::kScratch, 40);
  b.Charge(MemCategory::kTopology, 10);
  EXPECT_EQ(b.charged_bytes(), 150u);
  EXPECT_EQ(b.charged_bytes(MemCategory::kTopology), 110u);
  EXPECT_EQ(b.charged_bytes(MemCategory::kScratch), 40u);
  EXPECT_EQ(b.charged_bytes(MemCategory::kOther), 0u);
  EXPECT_EQ(b.peak_bytes(), 150u);

  b.Release(MemCategory::kTopology, 110);
  EXPECT_EQ(b.charged_bytes(), 40u);
  EXPECT_EQ(b.charged_bytes(MemCategory::kTopology), 0u);
  EXPECT_EQ(b.peak_bytes(), 150u) << "peak is a high-water mark";
}

TEST_F(MemoryBudgetTest, NoBudgetMeansNoPressure) {
  MemoryBudget& b = MemoryBudget::Get();
  EXPECT_EQ(b.budget_bytes(), 0u);
  b.Charge(MemCategory::kOther, 1u << 30);
  EXPECT_FALSE(b.UnderPressure()) << "0 budget = unlimited";
}

TEST_F(MemoryBudgetTest, PressureEntersAtTheCeilingAndExitsBelowIt) {
  MemoryBudget& b = MemoryBudget::Get();
  b.SetBudgetForTesting(1000);
  b.Charge(MemCategory::kTopology, 999);
  EXPECT_FALSE(b.UnderPressure());
  b.Charge(MemCategory::kTopology, 1);
  EXPECT_TRUE(b.UnderPressure()) << "charged == budget is pressure";
  b.Release(MemCategory::kTopology, 1);
  EXPECT_FALSE(b.UnderPressure());
}

TEST_F(MemoryBudgetTest, OverReleaseClampsInsteadOfUnderflowing) {
  MemoryBudget& b = MemoryBudget::Get();
  b.SetBudgetForTesting(100);
  b.Charge(MemCategory::kScratch, 50);
  // A buggy or double-counted release must not wrap the unsigned total
  // to ~2^64 and pin the process in permanent pressure.
  b.Release(MemCategory::kScratch, 9999);
  EXPECT_EQ(b.charged_bytes(), 0u);
  EXPECT_EQ(b.charged_bytes(MemCategory::kScratch), 0u);
  EXPECT_FALSE(b.UnderPressure());
}

TEST_F(MemoryBudgetTest, ConcurrentChargesBalanceExactly) {
  MemoryBudget& b = MemoryBudget::Get();
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&b] {
      for (int i = 0; i < kRounds; ++i) {
        b.Charge(MemCategory::kScratch, 7);
        b.Release(MemCategory::kScratch, 7);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(b.charged_bytes(), 0u);
  EXPECT_EQ(b.charged_bytes(MemCategory::kScratch), 0u);
}

// A materialized Session must actually charge the budget (residency is
// what topogend evicts under pressure), and destroying it must release
// what it charged.
TEST_F(MemoryBudgetTest, SessionResidencyIsChargedAndReleased) {
  MemoryBudget& b = MemoryBudget::Get();
  SessionOptions so = ScaledSessionOptions("small");
  so.roster.as_nodes = 200;
  so.journal_path.clear();
  {
    Session session(so);
    session.Metrics("Tree");
    EXPECT_GT(b.charged_bytes(MemCategory::kTopology), 0u)
        << "a resident CSR topology must be on the ledger";
  }
  EXPECT_EQ(b.charged_bytes(MemCategory::kTopology), 0u)
      << "destruction must release residency";
}

TEST_F(MemoryBudgetTest, PoolEvictionRelievesPressureButKeepsOneSession) {
  MemoryBudget& b = MemoryBudget::Get();
  SessionPool pool(/*max_sessions=*/4);
  auto factory = [](int as_nodes) {
    return [as_nodes]() {
      SessionOptions so = ScaledSessionOptions("small");
      so.roster.as_nodes = static_cast<graph::NodeId>(as_nodes);
      so.journal_path.clear();
      auto session = std::make_unique<Session>(so);
      session->Metrics("Tree");  // materialize, so residency is charged
      return session;
    };
  };
  pool.Acquire("a", factory(150));
  pool.Acquire("b", factory(200));
  pool.Acquire("c", factory(250));
  ASSERT_EQ(pool.size(), 3u);
  const std::uint64_t resident = b.charged_bytes(MemCategory::kTopology);
  ASSERT_GT(resident, 0u);

  // No pressure: eviction is a no-op.
  EXPECT_EQ(pool.EvictUnderPressure(), 0u);
  EXPECT_EQ(pool.size(), 3u);

  // Impossible budget: evict down to the floor of one resident Session
  // (the one serving the in-flight request must survive).
  b.SetBudgetForTesting(1);
  EXPECT_EQ(pool.EvictUnderPressure(), 2u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_LT(b.charged_bytes(MemCategory::kTopology), resident);

  // Achievable budget: evicting LRU entries stops as soon as the ledger
  // is back under it.
  b.SetBudgetForTesting(0);
  pool.Acquire("d", factory(300));
  pool.Acquire("e", factory(350));
  ASSERT_EQ(pool.size(), 3u);
  b.SetBudgetForTesting(b.charged_bytes() - 1);
  EXPECT_GE(pool.EvictUnderPressure(), 1u);
  EXPECT_FALSE(b.UnderPressure());
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace topogen::core
