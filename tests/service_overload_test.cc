// Overload resilience for topogend (docs/ROBUSTNESS.md): the CoDel-style
// shedding controller, the per-connection in-flight cap, drain-under-
// overload semantics, the lane watchdog, memory-budget degradation, the
// retrying client, and the socket-seam chaos points.
//
// Tests that need a slow or wedged executor pin it with the svc.respond
// delay fault instead of sleeping in kernels, so timing stays
// deterministic: the executor is provably inside a known window.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/memory_budget.h"
#include "fault/fault.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "service/client.h"
#include "service/overload.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/supervisor.h"

namespace topogen::service {
namespace {

namespace fs = std::filesystem;
using obs::Json;

// --- the shedding controller in isolation ---

TEST(LaneOverloadTest, SojournAboveTargetForAnIntervalLatchesShedding) {
  LaneOverload lo(OverloadOptions{
      .target_ns = 1000, .interval_ns = 10000, .estimate_factor = 4});
  lo.OnDequeue(/*sojourn_ns=*/2000, /*now_ns=*/1000);  // episode opens
  EXPECT_FALSE(lo.overloaded()) << "one bad sojourn is a burst, not overload";
  lo.OnDequeue(2000, 5000);  // above target, interval not yet elapsed
  EXPECT_FALSE(lo.overloaded());
  lo.OnDequeue(2000, 11500);  // above target for a full interval
  EXPECT_TRUE(lo.overloaded());
  EXPECT_TRUE(lo.ShouldShed(1));
  // An empty lane always admits, even mid-episode: only a dequeue can
  // end the episode, and shedding into an empty queue would mean no
  // dequeues ever happen again -- a permanently starved lane.
  EXPECT_FALSE(lo.ShouldShed(0));
  lo.OnDequeue(500, 12000);  // first dequeue back under target
  EXPECT_FALSE(lo.overloaded()) << "the episode must end immediately";
  EXPECT_FALSE(lo.ShouldShed(1));
}

TEST(LaneOverloadTest, EstimateTriggerShedsWithoutAnyDequeueSignal) {
  LaneOverload lo(OverloadOptions{
      .target_ns = 1000, .interval_ns = 10000, .estimate_factor = 4});
  EXPECT_FALSE(lo.ShouldShed(100)) << "no service-time sample yet";
  lo.OnComplete(5000);  // first sample sets the EWMA exactly
  EXPECT_EQ(lo.ewma_service_ns(), 5000u);
  EXPECT_FALSE(lo.ShouldShed(0)) << "empty queue is never estimate-shed";
  EXPECT_TRUE(lo.ShouldShed(1)) << "1 x 5000ns > 4 x 1000ns";
  lo.OnComplete(1000);  // EWMA decays: (7*5000 + 1000) / 8 = 4500
  EXPECT_EQ(lo.ewma_service_ns(), 4500u);
}

TEST(LaneOverloadTest, RetryAfterIsFlooredAtTargetAndCapped) {
  LaneOverload lo(OverloadOptions{});  // default 20ms target
  EXPECT_EQ(lo.RetryAfterMs(0), 20u) << "no EWMA: floor at the target";
  lo.OnComplete(1'000'000'000);  // 1s per job
  EXPECT_EQ(lo.RetryAfterMs(10), 5000u) << "11s estimate capped at 5s";
  EXPECT_EQ(lo.RetryAfterMs(0), 1000u) << "(0+1) x 1s";
}

// --- shared server-test plumbing ---

class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    ASSERT_EQ(::send(fd_, framed.data(), framed.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(framed.size()));
  }

  // Blocks until one full line arrives ("" = connection closed first).
  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  // Everything the server sends before closing, newline-framed or not --
  // for asserting what a torn write actually put on the wire.
  std::string ReadToEof() {
    std::string out = buffer_;
    buffer_.clear();
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return out;
      out.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

Json MustParse(const std::string& line) {
  const std::optional<Json> doc = Json::Parse(line);
  EXPECT_TRUE(doc.has_value()) << "unparseable response: " << line;
  return doc.value_or(Json());
}

std::string Field(const Json& doc, const char* key) {
  const Json* v = doc.Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::string();
}

std::string ErrorCode(const Json& doc) {
  const Json* err = doc.Find("error");
  return err != nullptr ? Field(*err, "code") : std::string();
}

std::uint64_t RetryAfterOf(const Json& doc) {
  const Json* err = doc.Find("error");
  if (err == nullptr) return 0;
  const Json* retry = err->Find("retry_after_ms");
  return (retry != nullptr && retry->is_number())
             ? static_cast<std::uint64_t>(retry->AsDouble())
             : 0;
}

// A tiny small-tier request with a unique roster size, so each id gets
// its own structural key (no dedup attach) while staying milliseconds to
// compute. With executors=1 every key lands on lane 0.
std::string TinyRequest(const std::string& id, int as_nodes) {
  return std::string(R"({"id":")") + id +
         R"(","topology":"Tree","metrics":["signature"],"scale":"small",)" +
         R"("as_nodes":)" + std::to_string(as_nodes) + "}";
}

void WaitFor(const std::function<bool()>& pred, const char* what) {
  for (int i = 0; i < 5000; ++i) {
    if (pred()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "timed out waiting for " << what;
}

struct FaultGuard {
  explicit FaultGuard(const char* spec) { fault::ArmForTesting(spec); }
  ~FaultGuard() { fault::Disarm(); }
};

// Restores the process memory budget on every exit path; a leaked tiny
// budget would silently degrade every later service test to estimators.
struct BudgetGuard {
  explicit BudgetGuard(std::uint64_t bytes) {
    core::MemoryBudget::Get().SetBudgetForTesting(bytes);
  }
  ~BudgetGuard() { core::MemoryBudget::Get().SetBudgetForTesting(0); }
};

// Routes the JSONL event log to a temp file for the duration of a test.
class EventCapture {
 public:
  EventCapture() {
    path_ = fs::temp_directory_path() /
            ("topogen_overload_events_" +
             std::to_string(static_cast<long>(::getpid())) + ".jsonl");
    fs::remove(path_);
    ::setenv("TOPOGEN_EVENTS", path_.c_str(), 1);
    obs::Env::ResetForTesting();
    obs::EventLog::Get().ResetForTesting();
  }
  ~EventCapture() {
    ::unsetenv("TOPOGEN_EVENTS");
    obs::Env::ResetForTesting();
    obs::EventLog::Get().ResetForTesting();
    fs::remove(path_);
  }

  // Every parsed record of the given type.
  std::vector<Json> Records(const std::string& type) const {
    std::vector<Json> out;
    std::ifstream is(path_);
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty()) continue;
      std::optional<Json> doc = Json::Parse(line);
      if (!doc.has_value() || !doc->is_object()) {
        ADD_FAILURE() << "unparseable event line: " << line;
        continue;
      }
      if (Field(*doc, "type") == type) out.push_back(std::move(*doc));
    }
    return out;
  }

 private:
  fs::path path_;
};

// --- the per-connection in-flight cap ---

TEST(ServiceOverloadTest, InflightCapShedsWithRetryAfterMs) {
  Server server({.executors = 1, .inflight_cap = 2, .start_paused = true});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  conn.Send(TinyRequest("cap1", 150));
  conn.Send(TinyRequest("cap2", 151));
  WaitFor([&] { return server.stats().admitted >= 2; }, "2 admitted");
  conn.Send(TinyRequest("cap3", 152));

  // The third request sheds immediately (executors still paused), with
  // the typed code and a positive backoff hint.
  const Json shed = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(shed, "id"), "cap3");
  EXPECT_EQ(Field(shed, "status"), "error");
  EXPECT_EQ(ErrorCode(shed), "overloaded");
  EXPECT_GE(RetryAfterOf(shed), 1u);
  EXPECT_EQ(server.stats().rejected_inflight_cap, 1u);

  server.ResumeExecutor();
  const Json r1 = MustParse(conn.ReadLine());
  const Json r2 = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(r1, "status"), "ok");
  EXPECT_EQ(Field(r2, "status"), "ok");

  // The answered requests released their in-flight slots: the same
  // connection is admittable again.
  conn.Send(TinyRequest("cap4", 153));
  EXPECT_EQ(Field(MustParse(conn.ReadLine()), "status"), "ok");
  EXPECT_EQ(server.stats().rejected_inflight_cap, 1u);
}

// A second connection has its own ledger: one greedy client must not
// starve its neighbors.
TEST(ServiceOverloadTest, InflightCapIsPerConnection) {
  Server server({.executors = 1, .inflight_cap = 1, .start_paused = true});
  server.Start();
  RawClient greedy(server.port());
  RawClient polite(server.port());
  ASSERT_TRUE(greedy.connected());
  ASSERT_TRUE(polite.connected());

  greedy.Send(TinyRequest("g1", 150));
  WaitFor([&] { return server.stats().admitted >= 1; }, "g1 admitted");
  greedy.Send(TinyRequest("g2", 151));
  EXPECT_EQ(ErrorCode(MustParse(greedy.ReadLine())), "overloaded");

  polite.Send(TinyRequest("p1", 152));
  WaitFor([&] { return server.stats().admitted >= 2; }, "p1 admitted");
  server.ResumeExecutor();
  EXPECT_EQ(Field(MustParse(polite.ReadLine()), "status"), "ok");
  EXPECT_EQ(Field(MustParse(greedy.ReadLine()), "status"), "ok");
}

// --- adaptive shedding through the wire ---

// Prime the lane's EWMA with one slow job, wedge a second, and the
// estimate trigger (depth x EWMA >> target) sheds the next arrival while
// the queue is still far below the admission budget -- the fixed
// queue_full limit never fires.
TEST(ServiceOverloadTest, BackloggedLaneShedsAdaptivelyWithRetryAfterMs) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.respond@kind=delay,ms=150,match=slow");
  EventCapture events;
  Server server({.executors = 1, .target_ms = 1});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  // slow1 completes in ~150ms and seeds the EWMA with it.
  conn.Send(TinyRequest("slow1", 150));
  EXPECT_EQ(Field(MustParse(conn.ReadLine()), "status"), "ok");

  // slow2 occupies the executor for another 150ms...
  conn.Send(TinyRequest("slow2", 151));
  WaitFor([&] { return server.stats().completed >= 2; },
          "slow2 executing (completed bumps before its delayed send)");
  // ...r3 queues behind it (depth 0 at admission: never shed)...
  conn.Send(TinyRequest("r3", 152));
  WaitFor([&] { return server.stats().admitted >= 3; }, "r3 admitted");
  // ...and r4 sees depth 1 x ~150ms EWMA >> 4 x 1ms target: shed.
  conn.Send(TinyRequest("r4", 153));

  const Json shed = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(shed, "id"), "r4");
  EXPECT_EQ(ErrorCode(shed), "overloaded");
  // The hint reflects the estimated drain time: (depth 1 + 1) x ~150ms.
  EXPECT_GE(RetryAfterOf(shed), 100u);
  EXPECT_EQ(server.stats().rejected_overloaded, 1u);
  EXPECT_EQ(server.stats().rejected_queue_full, 0u)
      << "adaptive shedding must fire long before the queue cap";

  // Everything admitted still answers.
  const Json s2 = MustParse(conn.ReadLine());
  const Json rr3 = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(s2, "id"), "slow2");
  EXPECT_EQ(Field(rr3, "id"), "r3");
  EXPECT_EQ(Field(s2, "status"), "ok");
  EXPECT_EQ(Field(rr3, "status"), "ok");

  // The shed left an audit record with the hint.
  const std::vector<Json> sheds = events.Records("request");
  bool found = false;
  for (const Json& rec : sheds) {
    if (Field(rec, "op") == "shed" && Field(rec, "id") == "r4") {
      found = true;
      const Json* retry = rec.Find("retry_after_ms");
      ASSERT_NE(retry, nullptr);
      EXPECT_GE(retry->AsDouble(), 100.0);
    }
  }
  EXPECT_TRUE(found) << "no shed event record for r4";
}

// --- drain under overload (SIGTERM semantics) ---

// Stop() while a shed response is already on the wire and two slow
// requests are admitted: both admitted requests must be *answered*, a
// request arriving mid-drain must be *rejected* with the typed draining
// error -- nothing is silently dropped -- and the event log must carry
// the shed audit record alongside both done records.
TEST(ServiceOverloadTest, DrainUnderOverloadAnswersAdmittedRejectsLate) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.respond@kind=delay,ms=300,match=dr");
  EventCapture events;
  Server server({.executors = 1, .inflight_cap = 2, .start_paused = true});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  conn.Send(TinyRequest("dr1", 150));
  conn.Send(TinyRequest("dr2", 151));
  WaitFor([&] { return server.stats().admitted >= 2; }, "2 admitted");
  conn.Send(TinyRequest("shed3", 152));
  const Json shed = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(shed, "id"), "shed3");
  EXPECT_EQ(ErrorCode(shed), "overloaded");
  EXPECT_GE(RetryAfterOf(shed), 1u);

  // SIGTERM-equivalent: Stop() unpauses and drains. The delay fault
  // holds each dr response for 300ms, so the drain provably spans the
  // late request below.
  std::thread stopper([&] { server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  conn.Send(TinyRequest("late4", 153));

  // Responses, in arrival order: late4's typed rejection beats the
  // delayed dr responses.
  const Json late = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(late, "id"), "late4");
  EXPECT_EQ(ErrorCode(late), "draining");
  const Json d1 = MustParse(conn.ReadLine());
  const Json d2 = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(d1, "id"), "dr1");
  EXPECT_EQ(Field(d2, "id"), "dr2");
  EXPECT_EQ(Field(d1, "status"), "ok");
  EXPECT_EQ(Field(d2, "status"), "ok");
  stopper.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.responses, 2u) << "every admitted request answered";
  EXPECT_EQ(stats.rejected_inflight_cap, 1u);
  EXPECT_EQ(stats.response_errors, 0u) << "nothing dropped";

  // events.jsonl: the shed audit record plus a done record per admitted
  // request survived the drain.
  std::size_t sheds = 0, dones = 0;
  for (const Json& rec : events.Records("request")) {
    if (Field(rec, "op") == "shed") ++sheds;
    if (Field(rec, "op") == "done") ++dones;
  }
  EXPECT_EQ(sheds, 1u);
  EXPECT_EQ(dones, 2u);
}

// --- the lane watchdog ---

TEST(ServiceOverloadTest, WatchdogFailsQueuedRequestsBehindAWedgedLane) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.respond@kind=delay,ms=1500,match=wedge");
  Server server({.executors = 1, .stall_ms = 100});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  conn.Send(TinyRequest("wedge1", 150));
  // completed bumps just before the 1500ms-delayed send, so observing it
  // proves the executor is wedged inside Respond.
  WaitFor([&] { return server.stats().completed >= 1; }, "executor wedged");
  conn.Send(TinyRequest("q2", 151));
  WaitFor([&] { return server.stats().admitted >= 2; }, "q2 queued");

  // The watchdog (stall_ms=100, polling every 25ms) fails q2 with a
  // typed error long before the wedged job's 1500ms hold releases.
  const auto t0 = std::chrono::steady_clock::now();
  const Json failed = MustParse(conn.ReadLine());
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(Field(failed, "id"), "q2");
  EXPECT_EQ(ErrorCode(failed), "lane_stalled");
  EXPECT_LT(elapsed.count(), 1300) << "q2 must not wait out the wedge";
  EXPECT_EQ(server.stats().lane_stall_failures, 1u);

  // The wedged job itself still answers once the hold releases.
  const Json wedged = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(wedged, "id"), "wedge1");
  EXPECT_EQ(Field(wedged, "status"), "ok");

  // The lane is healthy again afterwards.
  conn.Send(TinyRequest("after", 152));
  EXPECT_EQ(Field(MustParse(conn.ReadLine()), "status"), "ok");
}

// --- memory-budget degradation ---

TEST(ServiceOverloadTest, MemoryPressureDegradesToSampledEstimators) {
  Server server({.executors = 1});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  // Uncontended request: full metrics.
  conn.Send(TinyRequest("m1", 150));
  const Json full = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(full, "status"), "ok");

  // A 1-byte budget is unsatisfiable (m1's topology is resident), so the
  // next job evicts what it can and then serves sampled.
  const BudgetGuard budget(1);
  conn.Send(TinyRequest("m2", 151));
  const Json degraded = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(degraded, "id"), "m2");
  EXPECT_EQ(Field(degraded, "status"), "degraded");
  const Json* entries = degraded.Find("degraded");
  ASSERT_NE(entries, nullptr);
  ASSERT_GE(entries->AsArray().size(), 1u);
  bool marked = false;
  for (const Json& e : entries->AsArray()) {
    if (Field(e, "kind") == "mem_budget") marked = true;
  }
  EXPECT_TRUE(marked) << "degraded[] must carry the mem_budget marker";
  // The degraded response still carries the requested figure.
  ASSERT_NE(degraded.Find("figures"), nullptr);
  EXPECT_FALSE(Field(*degraded.Find("figures"), "signature").empty());
  EXPECT_GE(server.stats().mem_degraded, 1u);
}

// --- the retrying client ---

TEST(ServiceClientTest, RetriesThroughShedsUntilTheLaneDrains) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.respond@kind=delay,ms=150,match=slow");
  Server server({.executors = 1, .target_ms = 1});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  // Same backlog shape as the shedding test: EWMA seeded, lane wedged,
  // one job queued.
  conn.Send(TinyRequest("slow1", 150));
  EXPECT_EQ(Field(MustParse(conn.ReadLine()), "status"), "ok");
  conn.Send(TinyRequest("slow2", 151));
  WaitFor([&] { return server.stats().completed >= 2; }, "slow2 executing");
  conn.Send(TinyRequest("r3", 152));
  WaitFor([&] { return server.stats().admitted >= 3; }, "r3 admitted");

  // The client's first attempt sheds; it honors retry_after_ms and
  // succeeds once the backlog drains.
  Client client({.port = server.port(), .op_timeout_ms = 10000});
  const ClientResult result = client.Call(TinyRequest("via-client", 153));
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_GE(result.sheds, 1) << "the first attempt must have been shed";
  const Json doc = MustParse(result.line);
  EXPECT_EQ(Field(doc, "id"), "via-client");
  EXPECT_EQ(Field(doc, "status"), "ok");
  EXPECT_GE(server.stats().rejected_overloaded, 1u);
}

TEST(ServiceClientTest, GivesUpCleanlyWhenNothingListens) {
  // A reserved-then-released port: nothing listens there.
  const int port = ResolvePort(0);
  Client client({.port = port,
                 .op_timeout_ms = 200,
                 .max_attempts = 2,
                 .backoff_initial_ms = 1,
                 .backoff_max_ms = 2});
  const ClientResult result = client.Call(TinyRequest("void", 150));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.line.empty());
  EXPECT_EQ(result.attempts, 2);
  EXPECT_FALSE(result.error.empty());
}

TEST(ServiceClientTest, ParsesOverloadHints) {
  const std::string shed = OverloadedResponse("x", "busy", 137);
  EXPECT_TRUE(IsOverloadedError(shed));
  EXPECT_EQ(ParseRetryAfterMs(shed), 137u);
  const std::string other = ErrorResponse("x", "queue_full", "full");
  EXPECT_FALSE(IsOverloadedError(other));
  EXPECT_EQ(ParseRetryAfterMs(other), 0u);
  EXPECT_FALSE(IsOverloadedError(R"({"id":"x","status":"ok"})"));
  EXPECT_FALSE(IsOverloadedError("not json"));
}

// --- wire-level chaos: the socket seams ---

TEST(ServiceChaosTest, WriteResetDropsTheResponseNeverWrongBytes) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.sock.write@nth=1,kind=reset");
  Server server({.executors = 1});
  server.Start();
  {
    RawClient conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.Send(TinyRequest("reset1", 150));
    // The response write resets the connection before any byte: the
    // client sees a clean EOF, zero stray bytes.
    EXPECT_EQ(conn.ReadToEof(), "");
  }
  // The fault fired once; a fresh connection gets the full answer, and
  // the dropped response is on the ledger.
  RawClient retry(server.port());
  ASSERT_TRUE(retry.connected());
  retry.Send(TinyRequest("reset2", 150));
  EXPECT_EQ(Field(MustParse(retry.ReadLine()), "status"), "ok");
  EXPECT_EQ(server.stats().response_errors, 1u);
}

TEST(ServiceChaosTest, ShortWriteTearsTheLinePrefixOnly) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.sock.write@nth=1,kind=short");
  Server server({.executors = 1});
  server.Start();
  std::string torn;
  {
    RawClient conn(server.port());
    ASSERT_TRUE(conn.connected());
    conn.Send(TinyRequest("torn1", 150));
    torn = conn.ReadToEof();
  }
  // A torn response is a strict prefix of a correct line: bytes that
  // arrived are right, the newline never came, and the close is clean.
  ASSERT_FALSE(torn.empty()) << "short write must send a prefix";
  EXPECT_EQ(torn.find('\n'), std::string::npos) << "torn, not framed";
  EXPECT_EQ(torn.rfind(R"({"id":"torn1")", 0), 0u)
      << "the prefix is the real response's bytes: " << torn.substr(0, 40);

  RawClient retry(server.port());
  ASSERT_TRUE(retry.connected());
  retry.Send(TinyRequest("torn2", 150));
  EXPECT_EQ(Field(MustParse(retry.ReadLine()), "status"), "ok");
}

TEST(ServiceChaosTest, ShortReadGarblesFramingIntoATypedError) {
  if (!fault::CompiledIn()) GTEST_SKIP() << "fault points not compiled in";
  const FaultGuard guard("svc.sock.read@nth=1,kind=short");
  Server server({.executors = 1});
  server.Start();
  RawClient conn(server.port());
  ASSERT_TRUE(conn.connected());

  // The first recv is truncated: the server keeps a half request with no
  // newline. The next request's bytes splice onto it, and the combined
  // line is garbage -- which must answer as a typed parse error, not
  // hang and not crash.
  conn.Send(TinyRequest("lost-tail", 150));
  // Let the server recv (and truncate) the first request on its own
  // before the second arrives: back-to-back sends can coalesce into one
  // recv on loopback, and a truncation of the *combined* buffer could
  // eat both newlines and leave nothing to answer.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  conn.Send(TinyRequest("spliced", 151));
  const Json garbled = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(garbled, "status"), "error");
  EXPECT_EQ(ErrorCode(garbled), "invalid_argument");
  EXPECT_GE(server.stats().parse_errors, 1u);

  // The connection survives and serves the retry.
  conn.Send(TinyRequest("retry", 152));
  const Json ok = MustParse(conn.ReadLine());
  EXPECT_EQ(Field(ok, "id"), "retry");
  EXPECT_EQ(Field(ok, "status"), "ok");
}

// --- config clamp observability ---

TEST(ServiceConfigTest, OutOfRangeEnvEmitsConfigClampedEvent) {
  EventCapture events;
  ::setenv("TOPOGEN_SERVICE_EXECUTORS", "0", 1);  // below the minimum of 1
  obs::Env::ResetForTesting();
  const ServerOptions options = ServerOptions::FromEnv();
  ::unsetenv("TOPOGEN_SERVICE_EXECUTORS");
  obs::Env::ResetForTesting();

  EXPECT_EQ(options.executors, 2u) << "the default, not the bad value";
  const std::vector<Json> clamps = events.Records("config_clamped");
  ASSERT_EQ(clamps.size(), 1u)
      << "a silently substituted default is the bug this event fixes";
  EXPECT_EQ(Field(clamps[0], "var"), "TOPOGEN_SERVICE_EXECUTORS");
  EXPECT_EQ(Field(clamps[0], "raw"), "0");
  const Json* used = clamps[0].Find("used");
  ASSERT_NE(used, nullptr);
  EXPECT_EQ(used->AsDouble(), 2.0);
}

TEST(ServiceConfigTest, InRangeEnvEmitsNoClampEvent) {
  EventCapture events;
  ::setenv("TOPOGEN_SERVICE_EXECUTORS", "3", 1);
  obs::Env::ResetForTesting();
  const ServerOptions options = ServerOptions::FromEnv();
  ::unsetenv("TOPOGEN_SERVICE_EXECUTORS");
  obs::Env::ResetForTesting();

  EXPECT_EQ(options.executors, 3u);
  EXPECT_TRUE(events.Records("config_clamped").empty());
}

// --- supervised restart ---

// RunSupervised forks workers without exec, so the supervisor and every
// worker generation write the same event sink. The supervisor must open
// that sink before the first fork: left to the usual lazy open, each
// process's first event would truncate the file independently and wipe
// the other's records. This pins the whole restart story landing in one
// parseable log -- start, the crash, the restart, the clean exit -- with
// both generations' own worker events intact (EventCapture::Records
// fails the test on any unparseable line).
TEST(SupervisorTest, RestartRecoversAndSharesOneEventLog) {
  EventCapture events;
  const fs::path marker =
      fs::temp_directory_path() /
      ("topogen_supervisor_marker_" +
       std::to_string(static_cast<long>(::getpid())));
  fs::remove(marker);

  sigset_t saved;
  ::sigprocmask(SIG_SETMASK, nullptr, &saved);
  SupervisorOptions options;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  const int rc = RunSupervised(
      [&marker]() -> int {
        obs::Event("probe").Str("op", "worker");
        if (!fs::exists(marker)) {
          std::ofstream(marker) << "born once\n";
          return 41;  // abnormal exit: the supervisor must restart us
        }
        return 0;  // second generation exits clean, ending supervision
      },
      options);
  // RunSupervised blocks its signal set in the caller; restore for the
  // rest of the test binary.
  ::sigprocmask(SIG_SETMASK, &saved, nullptr);
  fs::remove(marker);

  EXPECT_EQ(rc, 0);
  std::vector<std::string> ops;
  for (const Json& rec : events.Records("supervisor")) {
    ops.push_back(Field(rec, "op"));
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"start", "worker_died", "restart",
                                           "exit"}));
  EXPECT_EQ(events.Records("probe").size(), 2u);
}

}  // namespace
}  // namespace topogen::service
