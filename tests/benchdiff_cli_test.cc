// End-to-end test for tools/benchdiff -- the CI perf gate. Drives the
// real binary the way the perf-gate job does and checks the contract CI
// depends on: self-compare exits 0, an injected +50% ns/op regression
// exits 1 at the default tolerance, a generous tolerance lets the same
// delta pass, bad usage exits 2, and the --json verdict parses with the
// regression attributed to the right record.
//
// Standalone main (not gtest): argv[1] = benchdiff binary, argv[2] =
// scratch directory. Prints one "ok:"/"FAIL:" line per check and exits
// non-zero on the first failure, so ctest logs show exactly which
// guarantee broke.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace fs = std::filesystem;
using topogen::obs::Json;

namespace {

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("%s: %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) ++g_failures;
}

// A minimal but schema-valid topogen-bench/2 document. `scale` inflates
// the first record's ns_per_op to fake a regression.
std::string BenchJson(double scale) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"topogen-bench/2\",\n"
     << "  \"created_unix\": 0,\n  \"host_threads\": 1,\n"
     << "  \"results\": [\n"
     << "    {\"name\": \"BM_Bfs/10000\", \"kernel\": \"bfs_distances\", "
        "\"family\": \"plrg\", \"n\": 10000, \"threads\": 1, "
        "\"ns_per_op\": "
     << 1000000.0 * scale
     << ", \"bytes_alloc_per_op\": 0, \"p50_ns\": 900000, "
        "\"p90_ns\": 1100000, \"p99_ns\": 1200000, \"max_ns\": 1300000},\n"
     << "    {\"name\": \"BM_Ball/radius:2\", \"kernel\": \"ball\", "
        "\"family\": \"plrg\", \"n\": 50000, \"threads\": 1, "
        "\"ns_per_op\": 50000, \"bytes_alloc_per_op\": 0, "
        "\"p50_ns\": 45000, \"p90_ns\": 55000, \"p99_ns\": 60000, "
        "\"max_ns\": 70000}\n  ]\n}\n";
  return os.str();
}

void WriteFile(const fs::path& p, const std::string& content) {
  std::ofstream os(p);
  os << content;
}

// Runs a command line, returning the child's exit code (-1 on failure to
// run). std::system goes through the shell, which is fine here: every
// path is a scratch-directory file this test created.
int Run(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  if (rc == -1) return -1;
  return WEXITSTATUS(rc);
}

std::string ReadFile(const fs::path& p) {
  std::ifstream is(p);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <benchdiff-binary> <scratch-dir>\n",
                 argv[0]);
    return 2;
  }
  const std::string benchdiff = argv[1];
  const fs::path dir = argv[2];
  fs::remove_all(dir);
  fs::create_directories(dir);

  const fs::path base = dir / "base.json";
  const fs::path same = dir / "same.json";
  const fs::path regressed = dir / "regressed.json";
  WriteFile(base, BenchJson(1.0));
  WriteFile(same, BenchJson(1.0));
  WriteFile(regressed, BenchJson(1.5));

  const std::string quiet = " > " + (dir / "out.txt").string() + " 2>&1";
  Check(Run(benchdiff + " " + base.string() + " " + same.string() + quiet) ==
            0,
        "self-compare exits 0");
  Check(Run(benchdiff + " --tolerance=0.3 " + base.string() + " " +
            regressed.string() + quiet) == 1,
        "+50% ns/op at 30% tolerance exits 1");
  Check(Run(benchdiff + " --tolerance=0.9 " + base.string() + " " +
            regressed.string() + quiet) == 0,
        "+50% ns/op inside a 90% tolerance exits 0");
  Check(Run(benchdiff + " --tolerance=0.3 --tolerance=bfs_distances:0.9 " +
            base.string() + " " + regressed.string() + quiet) == 0,
        "per-kernel override exempts the regressed kernel");
  Check(Run(benchdiff + " " + base.string() + quiet) == 2,
        "missing operand exits 2");
  Check(Run(benchdiff + " " + base.string() + " " +
            (dir / "missing.json").string() + quiet) == 2,
        "unreadable input exits 2");

  // A baseline-only record must warn on stderr and stay exit 0 -- a
  // dropped kernel is a coverage hole, not a regression.
  const fs::path shrunk = dir / "shrunk.json";
  {
    std::string one_record = BenchJson(1.0);
    const std::size_t cut = one_record.find(",\n    {\"name\": \"BM_Ball");
    Check(cut != std::string::npos, "test fixture still has two records");
    one_record.replace(cut, one_record.rfind("\n  ]") - cut, "");
    WriteFile(shrunk, one_record);
  }
  const fs::path warn_out = dir / "warn.txt";
  Check(Run(benchdiff + " " + base.string() + " " + shrunk.string() + " > " +
            warn_out.string() + " 2>&1") == 0,
        "baseline record missing from current run still exits 0");
  Check(ReadFile(warn_out).find(
            "warning: baseline benchmark 'BM_Ball/radius:2' missing") !=
            std::string::npos,
        "missing baseline record warned on stderr");
  const fs::path warn_verdict = dir / "warn-verdict.json";
  Check(Run(benchdiff + " --json=" + warn_verdict.string() + " " +
            base.string() + " " + shrunk.string() + quiet) == 0,
        "verdict run with missing record exits 0");
  if (const std::optional<Json> wdoc = Json::Parse(ReadFile(warn_verdict));
      wdoc.has_value() && wdoc->is_object()) {
    const Json* missing = wdoc->Find("missing_from_current");
    Check(missing != nullptr && missing->is_number() &&
              missing->AsDouble() == 1.0,
          "verdict counts the missing record");
  } else {
    Check(false, "warn verdict JSON parses");
  }

  const fs::path verdict = dir / "verdict.json";
  Check(Run(benchdiff + " --tolerance=0.3 --json=" + verdict.string() + " " +
            base.string() + " " + regressed.string() + quiet) == 1,
        "verdict run still exits 1");
  const std::optional<Json> doc = Json::Parse(ReadFile(verdict));
  Check(doc.has_value() && doc->is_object(), "verdict JSON parses");
  if (doc.has_value() && doc->is_object()) {
    const Json* schema = doc->Find("schema");
    Check(schema != nullptr && schema->is_string() &&
              schema->AsString() == "topogen-benchdiff/1",
          "verdict schema tag");
    const Json* v = doc->Find("verdict");
    Check(v != nullptr && v->AsString() == "regression", "verdict value");
    const Json* results = doc->Find("results");
    bool attributed = false;
    if (results != nullptr && results->is_array()) {
      for (const Json& rec : results->AsArray()) {
        const Json* name = rec.Find("name");
        const Json* reg = rec.Find("regressed");
        if (name == nullptr || reg == nullptr) continue;
        if (name->AsString() == "BM_Bfs/10000") {
          attributed = reg->is_bool() && reg->AsBool();
        } else if (reg->is_bool() && reg->AsBool()) {
          attributed = false;  // only the inflated record may regress
          break;
        }
      }
    }
    Check(attributed, "regression attributed to the inflated record only");
  }

  fs::remove_all(dir);
  if (g_failures > 0) {
    std::fprintf(stderr, "%d check(s) failed\n", g_failures);
    return 1;
  }
  std::printf("all benchdiff CLI checks passed\n");
  return 0;
}
