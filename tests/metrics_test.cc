#include <gtest/gtest.h>

#include <cmath>

#include "gen/canonical.h"
#include "gen/degree_seq.h"
#include "gen/plrg.h"
#include "metrics/ball.h"
#include "metrics/clustering.h"
#include "metrics/cover_bicomp.h"
#include "metrics/degree.h"
#include "metrics/eccentricity.h"
#include "metrics/expansion.h"
#include "metrics/spectrum.h"
#include "metrics/tolerance.h"

namespace topogen::metrics {
namespace {

using graph::Graph;
using graph::Rng;

TEST(SampleCentersTest, SmallGraphUsesAllNodes) {
  const Graph g = gen::Ring(10);
  EXPECT_EQ(SampleCenters(g, 20, 1).size(), 10u);
}

TEST(SampleCentersTest, SampleIsDistinct) {
  const Graph g = gen::Mesh(20, 20);
  const auto centers = SampleCenters(g, 24, 2);
  EXPECT_EQ(centers.size(), 24u);
  auto sorted = centers;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(BallGrowingTest, SizeMetricTracksBallSize) {
  const Graph g = gen::Mesh(15, 15);
  BallGrowingOptions opts;
  opts.max_centers = 8;
  const Series s = BallGrowingSeries(
      g, opts, [](const Graph& ball, Rng&) {
        return static_cast<double>(ball.num_nodes());
      });
  ASSERT_FALSE(s.empty());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s.x[i], s.y[i], 1e-9);  // x is mean size, y returned size
  }
  // Sizes grow with radius.
  for (std::size_t i = 1; i < s.size(); ++i) EXPECT_GT(s.x[i], s.x[i - 1]);
}

TEST(BallGrowingTest, NanSkipsSample) {
  const Graph g = gen::Ring(20);
  BallGrowingOptions opts;
  opts.max_centers = 4;
  const Series s = BallGrowingSeries(g, opts, [](const Graph&, Rng&) {
    return std::numeric_limits<double>::quiet_NaN();
  });
  EXPECT_TRUE(s.empty());
}

TEST(ExpansionTest, PathIsLinear) {
  const Graph g = gen::Linear(101);
  const Series e = Expansion(g, {.max_sources = 101});
  // E(h) for a path grows linearly-ish: from an average node about
  // (2h+1)/n until saturation.
  ASSERT_GT(e.size(), 10u);
  EXPECT_NEAR(e.y[0], 2.8 / 101.0, 0.5 / 101.0);  // h=1: ~3 nodes reachable
  EXPECT_LT(e.y[9] / e.y[0], 12.0);               // no exponential blowup
}

TEST(ExpansionTest, TreeIsExponential) {
  const Graph g = gen::KaryTree(3, 6);
  const Series e = Expansion(g, {.max_sources = 2000});
  ASSERT_GT(e.size(), 4u);
  // Successive ratios stay near the branching factor early on.
  const double r1 = e.y[2] / e.y[1];
  EXPECT_GT(r1, 1.8);
}

TEST(ExpansionTest, SaturatesAtOne) {
  const Graph g = gen::Mesh(8, 8);
  const Series e = Expansion(g);
  EXPECT_NEAR(e.y.back(), 1.0, 1e-9);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < e.size(); ++i) {
    EXPECT_GE(e.y[i], e.y[i - 1] - 1e-12);
  }
}

TEST(ExpansionTest, CompleteGraphIsInstant) {
  const Series e = Expansion(gen::Complete(30));
  ASSERT_EQ(e.size(), 1u);
  EXPECT_DOUBLE_EQ(e.y[0], 1.0);
}

TEST(DegreeCcdfTest, StartsAtOneAndDecreases) {
  Rng rng(1);
  const Graph g = gen::ErdosRenyi(500, 0.01, rng);
  const Series ccdf = DegreeCcdf(g);
  ASSERT_FALSE(ccdf.empty());
  EXPECT_NEAR(ccdf.y[0], 1.0, 1e-9);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LT(ccdf.y[i], ccdf.y[i - 1]);
  }
}

TEST(DegreeCcdfTest, RegularGraphIsSinglePoint) {
  const Series ccdf = DegreeCcdf(gen::Ring(20));
  ASSERT_EQ(ccdf.size(), 1u);
  EXPECT_DOUBLE_EQ(ccdf.x[0], 2.0);
}

TEST(FitPowerLawExponentTest, RecoversSyntheticExponent) {
  // Build an exact power-law degree multiset and fit it: the estimate must
  // land near the truth.
  graph::GraphBuilder b;
  // Star-of-stars isn't needed; construct a synthetic graph via the CCDF
  // path is overkill. Instead check monotonicity: heavier tail -> smaller
  // fitted beta.
  Rng r1(2), r2(3);
  gen::PowerLawDegreeParams heavy{.n = 4000, .exponent = 2.0,
                                  .min_degree = 1, .max_degree = 400};
  gen::PowerLawDegreeParams light{.n = 4000, .exponent = 3.0,
                                  .min_degree = 1, .max_degree = 400};
  const Graph gh = gen::ConnectDegreeSequence(
      gen::SamplePowerLawDegrees(heavy, r1),
      gen::ConnectMethod::kPlrgMatching, r1, false);
  const Graph gl = gen::ConnectDegreeSequence(
      gen::SamplePowerLawDegrees(light, r2),
      gen::ConnectMethod::kPlrgMatching, r2, false);
  EXPECT_LT(FitPowerLawExponent(gh), FitPowerLawExponent(gl));
}

TEST(LooksHeavyTailedTest, CanonicalGraphsDoNot) {
  Rng rng(4);
  EXPECT_FALSE(LooksHeavyTailed(gen::KaryTree(3, 6)));
  EXPECT_FALSE(LooksHeavyTailed(gen::Mesh(20, 20)));
  EXPECT_FALSE(LooksHeavyTailed(gen::ErdosRenyi(2000, 0.002, rng)));
}

TEST(EccentricityDistributionTest, SumsToOne) {
  const Graph g = gen::Mesh(12, 12);
  const Series s = EccentricityDistribution(g);
  double total = 0.0;
  for (double y : s.y) total += y;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(EccentricityDistributionTest, TreeIsOneSided) {
  // In a complete k-ary tree the root has the minimum eccentricity D and
  // leaves reach 2D; the distribution mass sits above the mean's left
  // shoulder asymmetrically. Check support spread is wide.
  const Series s = EccentricityDistribution(gen::KaryTree(3, 6));
  ASSERT_GT(s.size(), 1u);
  EXPECT_LT(s.x.front(), 0.8);
  EXPECT_GT(s.x.back(), 1.0);
}

TEST(VertexCoverSeriesTest, GrowsWithBallSize) {
  const Graph g = gen::Mesh(14, 14);
  BallGrowingOptions opts;
  opts.max_centers = 6;
  const Series s = VertexCoverSeries(g, opts);
  ASSERT_GT(s.size(), 3u);
  EXPECT_GT(s.y.back(), s.y.front());
  // Cover of a ball is at most the ball.
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_LE(s.y[i], s.x[i]);
}

TEST(BiconnectivitySeriesTest, TreeBallsAreAllBridges) {
  const Graph g = gen::KaryTree(2, 7);
  BallGrowingOptions opts;
  opts.max_centers = 4;
  const Series s = BiconnectivitySeries(g, opts);
  ASSERT_FALSE(s.empty());
  // A tree ball with n nodes has exactly n-1 biconnected components.
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s.y[i], s.x[i] - 1.0, 0.5);
  }
}

TEST(ToleranceTest, AttackBeatsErrorOnHeavyTails) {
  Rng rng(5);
  gen::PlrgParams p;
  p.n = 2500;
  const Graph g = gen::Plrg(p, rng);
  const ToleranceOptions opts{.max_fraction = 0.1, .step = 0.05,
                              .path_samples = 48, .seed = 6};
  const Series attack = AttackTolerance(g, opts);
  const Series error = ErrorTolerance(g, opts);
  ASSERT_GE(attack.size(), 2u);
  ASSERT_GE(error.size(), 2u);
  // Figure 9: the attack curve *peaks* -- killing hubs balloons path
  // lengths before the graph shatters -- while random loss barely moves
  // them. Compare curve maxima, not endpoints (past the peak the largest
  // surviving component is tiny and its paths short again).
  const double attack_peak =
      *std::max_element(attack.y.begin(), attack.y.end());
  const double error_peak = *std::max_element(error.y.begin(), error.y.end());
  EXPECT_GT(attack_peak, error_peak);
}

TEST(ToleranceTest, ZeroRemovalMatchesBaseline) {
  Rng rng(7);
  const Graph g = gen::ErdosRenyi(400, 0.02, rng);
  const Series attack = AttackTolerance(g, {.max_fraction = 0.05,
                                            .step = 0.05,
                                            .path_samples = 400,
                                            .seed = 8});
  ASSERT_FALSE(attack.empty());
  EXPECT_NEAR(attack.y[0], graph::AveragePathLength(g, 400), 1e-9);
}

TEST(ClusteringTest, TriangleIsOne) {
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(gen::Complete(3)), 1.0);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(gen::Complete(10)), 1.0);
}

TEST(ClusteringTest, TreeIsZero) {
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(gen::KaryTree(3, 5)), 0.0);
}

TEST(ClusteringTest, RandomGraphMatchesP) {
  Rng rng(9);
  const Graph g = gen::ErdosRenyi(800, 0.02, rng, false);
  EXPECT_NEAR(ClusteringCoefficient(g), 0.02, 0.012);
}

TEST(EigenvalueRankTest, OnlyPositiveValues) {
  const Series s = EigenvalueRank(gen::Mesh(10, 10), {.top_k = 32});
  for (double y : s.y) EXPECT_GT(y, 0.0);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_EQ(s.x[i], s.x[i - 1] + 1.0);
  }
}

TEST(EigenvalueSlopeTest, HeavyTailIsSteeperThanMesh) {
  Rng rng(10);
  gen::PlrgParams p;
  p.n = 2000;
  const Graph plrg = gen::Plrg(p, rng);
  const double plrg_slope = EigenvaluePowerLawSlope(plrg, {.top_k = 24});
  const double mesh_slope =
      EigenvaluePowerLawSlope(gen::Mesh(30, 30), {.top_k = 24});
  // PLRG's spectrum decays like a power law; the mesh's is nearly flat.
  EXPECT_LT(plrg_slope, mesh_slope - 0.1);
}

}  // namespace
}  // namespace topogen::metrics
