#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/roster.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "store/artifact.h"
#include "store/hash.h"
#include "store/journal.h"
#include "store/serialize.h"

namespace topogen::store {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

std::string FileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- keys ---

TEST(KeyHasherTest, IsStructuralNotConcatenative) {
  const Key ab_c = KeyHasher().Mix("ab").Mix("c").Finish();
  const Key a_bc = KeyHasher().Mix("a").Mix("bc").Finish();
  EXPECT_NE(ab_c, a_bc);
}

TEST(KeyHasherTest, TypeTagsSeparateKinds) {
  // The u64 1 and the bool true absorb the same payload bits; only the
  // type tag distinguishes them.
  const Key as_u64 = KeyHasher().Mix(std::uint64_t{1}).Finish();
  const Key as_bool = KeyHasher().Mix(true).Finish();
  const Key as_double = KeyHasher().Mix(1.0).Finish();
  EXPECT_NE(as_u64, as_bool);
  EXPECT_NE(as_u64, as_double);
}

TEST(KeyHasherTest, DeterministicAndHexStable) {
  const auto make = [] {
    return KeyHasher().Mix("topology").Mix(std::uint64_t{42}).Mix(3.14).Finish();
  };
  EXPECT_EQ(make(), make());
  const std::string hex = make().Hex();
  EXPECT_EQ(hex.size(), 32u);
  EXPECT_EQ(hex, make().Hex());
}

TEST(KeyHasherTest, DoubleLastUlpChangesKey) {
  const double x = 0.1;
  const double y = std::nextafter(x, 1.0);
  EXPECT_NE(KeyHasher().Mix(x).Finish(), KeyHasher().Mix(y).Finish());
}

// --- byte serialization ---

TEST(SerializeTest, RoundTripsScalarsAndVectors) {
  std::string blob;
  ByteWriter w(blob);
  w.U8(7);
  w.U32(123456u);
  w.U64(0xdeadbeefcafef00dULL);
  w.F64(2.718281828);
  w.Str("hello");
  w.Vec(std::vector<double>{1.0, -2.5, 3.25});

  ByteReader r(blob);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 123456u);
  EXPECT_EQ(r.U64(), 0xdeadbeefcafef00dULL);
  EXPECT_DOUBLE_EQ(r.F64(), 2.718281828);
  EXPECT_EQ(r.Str(), "hello");
  const std::vector<double> v = r.Vec<double>();
  EXPECT_EQ(v, (std::vector<double>{1.0, -2.5, 3.25}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, TruncatedReadFailsSoftly) {
  std::string blob;
  ByteWriter w(blob);
  w.U64(1);
  w.Str("payload");
  blob.resize(blob.size() - 3);  // cut into the string
  ByteReader r(blob);
  EXPECT_EQ(r.U64(), 1u);
  (void)r.Str();
  EXPECT_FALSE(r.ok());
}

// --- binary CSR ---

void ExpectBitIdenticalRoundTrip(const graph::Graph& g) {
  std::string blob;
  graph::AppendCsr(blob, g);
  std::size_t offset = 0;
  const graph::Graph back = graph::ParseCsr(blob, offset);
  EXPECT_EQ(offset, blob.size());
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.edges(), g.edges());
  // The strongest contract: re-serializing reproduces the exact bytes.
  std::string again;
  graph::AppendCsr(again, back);
  EXPECT_EQ(again, blob);
}

TEST(CsrIoTest, RoundTripsEmptyGraph) {
  ExpectBitIdenticalRoundTrip(graph::Graph());
}

TEST(CsrIoTest, RoundTripsSingleNodeNoEdges) {
  ExpectBitIdenticalRoundTrip(graph::Graph::FromEdges(1, {}));
}

TEST(CsrIoTest, RoundTripsMultiComponentGraph) {
  // Two triangles and two isolated nodes.
  ExpectBitIdenticalRoundTrip(graph::Graph::FromEdges(
      8, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}}));
}

TEST(CsrIoTest, RoundTripsFullPlrg) {
  core::RosterOptions ro;
  ro.seed = 9;
  ro.as_nodes = 500;
  ro.rl_expansion_ratio = 3.0;
  ro.plrg_nodes = 1200;
  ro.degree_based_nodes = 1000;
  ExpectBitIdenticalRoundTrip(core::MakePlrg(ro).graph);
}

TEST(CsrIoTest, TruncatedBlobThrows) {
  std::string blob;
  graph::AppendCsr(blob, graph::Graph::FromEdges(4, {{0, 1}, {2, 3}}));
  for (const std::size_t keep : {blob.size() - 1, blob.size() / 2,
                                 std::size_t{3}}) {
    std::string cut = blob.substr(0, keep);
    std::size_t offset = 0;
    EXPECT_THROW(graph::ParseCsr(cut, offset), std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST(CsrIoTest, CorruptedShapeThrows) {
  std::string blob;
  graph::AppendCsr(blob, graph::Graph::FromEdges(4, {{0, 1}, {1, 2}}));
  // Flip a byte somewhere past the sizes header: the structural checks
  // (offset monotonicity / canonical edges / array sizes) must catch it
  // rather than hand back a silently-wrong graph.
  int detected = 0;
  for (std::size_t i = 0; i < blob.size(); ++i) {
    std::string bad = blob;
    bad[i] = static_cast<char>(bad[i] ^ 0x3f);
    std::size_t offset = 0;
    try {
      const graph::Graph g = graph::ParseCsr(bad, offset);
      // A flip may land in padding-free but semantically identical spots
      // only if it produced the same bytes -- it cannot here (xor != 0).
      // Accept survivors only when the parse consumed everything and the
      // graph still round-trips to the corrupted bytes.
      std::string again;
      graph::AppendCsr(again, g);
      EXPECT_EQ(again, bad) << "undetected corruption at byte " << i;
    } catch (const std::runtime_error&) {
      ++detected;
    }
  }
  EXPECT_GT(detected, 0);
}

// --- artifact store ---

TEST(ArtifactStoreTest, StoreLoadRoundTrip) {
  const fs::path root = FreshDir("topogen_store_roundtrip");
  ArtifactStore store(root.string());
  const Key key = KeyHasher().Mix("k1").Finish();
  std::string payload = "some payload bytes \x01\x02 end";
  payload.push_back('\0');  // embedded NUL must survive the round trip
  payload += "tail";

  std::string loaded;
  EXPECT_FALSE(store.Load("topology", key, loaded));
  EXPECT_FALSE(store.Contains("topology", key));
  EXPECT_TRUE(store.Store("topology", key, payload));
  EXPECT_TRUE(store.Contains("topology", key));
  EXPECT_TRUE(store.Load("topology", key, loaded));
  EXPECT_EQ(loaded, payload);

  // Kinds are separate namespaces.
  EXPECT_FALSE(store.Contains("metrics", key));
  fs::remove_all(root);
}

TEST(ArtifactStoreTest, TruncatedFileIsAMiss) {
  const fs::path root = FreshDir("topogen_store_truncated");
  ArtifactStore store(root.string());
  const Key key = KeyHasher().Mix("k2").Finish();
  ASSERT_TRUE(store.Store("metrics", key, "0123456789abcdef"));
  const fs::path path = store.PathFor("metrics", key);
  const std::string bytes = FileBytes(path);
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{4}, std::size_t{0}}) {
    WriteBytes(path, bytes.substr(0, keep));
    std::string loaded = "sentinel";
    EXPECT_FALSE(store.Load("metrics", key, loaded)) << "kept " << keep;
  }
  fs::remove_all(root);
}

TEST(ArtifactStoreTest, CorruptedPayloadIsAMiss) {
  const fs::path root = FreshDir("topogen_store_corrupt");
  ArtifactStore store(root.string());
  const Key key = KeyHasher().Mix("k3").Finish();
  ASSERT_TRUE(store.Store("metrics", key, "payload payload payload"));
  const fs::path path = store.PathFor("metrics", key);
  std::string bytes = FileBytes(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);  // flip payload bit
  WriteBytes(path, bytes);
  std::string loaded;
  EXPECT_FALSE(store.Load("metrics", key, loaded));

  // A miss is recoverable: overwriting repairs the entry.
  EXPECT_TRUE(store.Store("metrics", key, "fresh"));
  EXPECT_TRUE(store.Load("metrics", key, loaded));
  EXPECT_EQ(loaded, "fresh");
  fs::remove_all(root);
}

TEST(ArtifactStoreTest, PruneEvictsDownToBudget) {
  const fs::path root = FreshDir("topogen_store_prune");
  ArtifactStore store(root.string());
  const std::string payload(1024, 'x');
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Store("topology",
                            KeyHasher().Mix("evict").Mix(i).Finish(),
                            payload));
  }
  // Budget of ~2 artifacts (header included): most files must go.
  const std::size_t deleted = store.Prune(2 * (1024 + 64));
  EXPECT_GE(deleted, 5u);
  std::size_t remaining = 0;
  for (int i = 0; i < 8; ++i) {
    remaining += store.Contains("topology",
                                KeyHasher().Mix("evict").Mix(i).Finish())
                     ? 1
                     : 0;
  }
  EXPECT_EQ(remaining, 8 - deleted);
  EXPECT_LE(remaining, 2u);
  fs::remove_all(root);
}

// --- journal ---

TEST(JournalTest, MarksAndReloads) {
  const fs::path dir = FreshDir("topogen_journal");
  fs::create_directories(dir);
  const std::string path = (dir / "journal.log").string();
  {
    Journal j(path);
    EXPECT_TRUE(j.enabled());
    EXPECT_EQ(j.resumed_count(), 0u);
    EXPECT_FALSE(j.IsDone("metrics/aa"));
    j.MarkDone("metrics/aa", "00aa");
    j.MarkDone("topology/bb", "00bb");
    EXPECT_TRUE(j.IsDone("metrics/aa"));
  }
  Journal reloaded(path);
  EXPECT_EQ(reloaded.resumed_count(), 2u);
  EXPECT_TRUE(reloaded.IsDone("metrics/aa"));
  EXPECT_TRUE(reloaded.IsDone("topology/bb"));
  EXPECT_FALSE(reloaded.IsDone("metrics/cc"));
  fs::remove_all(dir);
}

TEST(JournalTest, TruncatedFinalLineIsIgnoredNotFatal) {
  const fs::path dir = FreshDir("topogen_journal_trunc");
  fs::create_directories(dir);
  const std::string path = (dir / "journal.log").string();
  {
    Journal j(path);
    j.MarkDone("topology/intact", "0001");
    j.MarkDone("metrics/cutoff", "0002");
  }
  // Simulate a crash mid-append: cut into the last line.
  std::string bytes = FileBytes(path);
  ASSERT_GT(bytes.size(), 6u);
  WriteBytes(path, bytes.substr(0, bytes.size() - 6));

  Journal resumed(path);
  EXPECT_TRUE(resumed.IsDone("topology/intact"));
  EXPECT_FALSE(resumed.IsDone("metrics/cutoff"));
  EXPECT_EQ(resumed.resumed_count(), 1u);

  // Garbage lines are skipped, not fatal. (Written whole: appending raw
  // bytes after the partial line above would merge with it.)
  WriteBytes(path,
             "v1 done topology/intact 0001\n"
             "not a journal line\n"
             "v2 done x y\n"
             "v1 done metrics/cutoff 00");
  Journal garbage(path);
  EXPECT_TRUE(garbage.IsDone("topology/intact"));
  EXPECT_EQ(garbage.resumed_count(), 1u);
  fs::remove_all(dir);
}

TEST(JournalTest, MarkDoneAfterPartialLineSealsIt) {
  const fs::path dir = FreshDir("topogen_journal_seal");
  fs::create_directories(dir);
  const std::string path = (dir / "journal.log").string();
  {
    Journal j(path);
    j.MarkDone("topology/intact", "0001");
    j.MarkDone("metrics/cutoff", "0002");
  }
  std::string bytes = FileBytes(path);
  WriteBytes(path, bytes.substr(0, bytes.size() - 6));

  // The resumed run recomputes the cut-off job and journals it again; its
  // record must not merge with the partial line left by the crash.
  {
    Journal resumed(path);
    EXPECT_FALSE(resumed.IsDone("metrics/cutoff"));
    resumed.MarkDone("metrics/cutoff", "0002");
  }
  Journal reloaded(path);
  EXPECT_TRUE(reloaded.IsDone("topology/intact"));
  EXPECT_TRUE(reloaded.IsDone("metrics/cutoff"));
  EXPECT_EQ(reloaded.resumed_count(), 2u);
  fs::remove_all(dir);
}

TEST(JournalTest, EmptyPathDisables) {
  Journal j("");
  EXPECT_FALSE(j.enabled());
  j.MarkDone("metrics/x", "00");
  EXPECT_FALSE(j.IsDone("metrics/x"));
}

}  // namespace
}  // namespace topogen::store
