// Crash-recovery end-to-end check (docs/ROBUSTNESS.md): a child process
// running the topology->metrics pipeline is killed mid-journal-append by
// the store.journal.append fail point (kind=abort, the _Exit guillotine),
// then the run is resumed in the same directory. The resumed run must
//
//   - not trip on the torn journal line (it reads as not-done and is
//     sealed before the next append),
//   - skip the work whose journal records survived intact,
//   - reproduce byte-identical figures to an uninterrupted clean run.
//
// A second round does the same under torn (short-write) journal appends
// without the crash. Usage: session_crash_test <scratch-dir>; the binary
// re-executes itself via /proc/self/exe in --child mode.
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/session.h"
#include "fault/fault.h"

namespace fs = std::filesystem;
using topogen::core::BasicMetrics;
using topogen::core::Session;
using topogen::core::SessionOptions;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

SessionOptions ChildOptions(const fs::path& dir) {
  SessionOptions o;
  o.roster.seed = 9;
  o.roster.as_nodes = 400;
  o.roster.rl_expansion_ratio = 3.0;
  o.roster.plrg_nodes = 1000;
  o.roster.degree_based_nodes = 800;
  o.suite.ball.max_centers = 4;
  o.suite.ball.big_ball_centers = 2;
  o.suite.expansion.max_sources = 200;
  o.cache_dir = (dir / "cache").string();
  o.journal_path = (dir / "journal.log").string();
  return o;
}

void PrintSeries(std::FILE* out, const topogen::metrics::Series& s) {
  std::fprintf(out, "# %s\n", s.name.c_str());
  for (std::size_t i = 0; i < s.x.size(); ++i) {
    std::fprintf(out, "%.17g %.17g\n", s.x[i], s.y[i]);
  }
}

// The "figure bench" under test: three topologies' basic metrics printed
// at full precision, plus a cache-stats sidecar the parent inspects.
int ChildMain(const fs::path& dir) {
  fs::create_directories(dir);
  Session session(ChildOptions(dir));
  std::FILE* out = std::fopen((dir / "figure.txt").string().c_str(), "w");
  if (out == nullptr) return 2;
  for (const char* id : {"Tree", "Mesh", "Random"}) {
    const BasicMetrics& m = session.Metrics(id);
    std::fprintf(out, "## %s %s\n", id, m.signature.ToString().c_str());
    PrintSeries(out, m.expansion);
    PrintSeries(out, m.resilience);
    PrintSeries(out, m.distortion);
  }
  std::fclose(out);
  std::FILE* stats = std::fopen((dir / "stats.txt").string().c_str(), "w");
  if (stats == nullptr) return 2;
  std::fprintf(stats, "journal_skips %llu\nmetrics_hits %llu\n",
               static_cast<unsigned long long>(
                   session.cache_stats().journal_skips),
               static_cast<unsigned long long>(
                   session.cache_stats().metrics_hits));
  std::fclose(stats);
  return 0;
}

// This binary's own path, resolved before any re-exec ("/proc/self/exe"
// cannot appear in the std::system command line -- there it would name
// the shell).
std::string g_self;

// Runs this binary in --child mode; returns the exit status (or -1 for an
// abnormal death that is not a plain exit).
int RunChild(const fs::path& dir, const std::string& faults) {
  const std::string cmd =
      (faults.empty() ? std::string() : "TOPOGEN_FAULTS='" + faults + "' ") +
      "'" + g_self + "' --child '" + dir.string() + "' >> '" +
      (dir.parent_path() / "child.log").string() + "' 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string FileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string StatLine(const fs::path& dir, const std::string& key) {
  std::ifstream in(dir / "stats.txt");
  std::string k, v;
  while (in >> k >> v) {
    if (k == key) return v;
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--child") {
    return ChildMain(argv[2]);
  }
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scratch-dir>\n", argv[0]);
    return 2;
  }
  if (!topogen::fault::CompiledIn()) {
    std::printf("session crash test skipped: fault points compiled out\n");
    return 0;
  }
  std::error_code ec;
  g_self = fs::read_symlink("/proc/self/exe", ec).string();
  if (ec) g_self = argv[0];
  const fs::path root = argv[1];
  fs::remove_all(root);
  fs::create_directories(root);

  // 1. Uninterrupted reference run.
  const fs::path clean = root / "clean";
  fs::create_directories(clean);
  Check(RunChild(clean, "") == 0, "clean run should exit 0");
  const std::string reference = FileBytes(clean / "figure.txt");
  Check(!reference.empty(), "clean run should produce a figure");

  // 2. Crash mid-journal-append: the third append (topology/Tree,
  //    metrics/Tree, then topology/Mesh) flushes half its line and _Exits.
  const fs::path crashed = root / "crashed";
  fs::create_directories(crashed);
  const int crash_rc =
      RunChild(crashed, "store.journal.append@kind=abort,nth=3");
  Check(crash_rc == topogen::fault::kCrashExitCode,
        "crashed run should exit with the injected-crash code, got " +
            std::to_string(crash_rc));

  // 3. Resume in the same directory: the torn line is sealed and ignored,
  //    intact records are skipped, figures match the clean run exactly.
  Check(RunChild(crashed, "") == 0, "resumed run should exit 0");
  Check(FileBytes(crashed / "figure.txt") == reference,
        "resumed figure must be byte-identical to the clean run");
  // Tree's metrics record survived intact, so its whole pipeline is one
  // journal skip (a metrics skip never re-materializes the topology).
  // Mesh's topology record was the torn line: its artifact still serves
  // from the store as a plain warm hit, just without the skip.
  Check(StatLine(crashed, "journal_skips") == "1",
        "resume should skip the intact journal record, skipped " +
            StatLine(crashed, "journal_skips"));
  Check(StatLine(crashed, "metrics_hits") == "1",
        "resume should warm-hit exactly Tree's stored metrics artifact");

  // 4. Torn (short-write) journal appends without a crash: the writing
  //    run seals its own torn lines and still exits clean...
  const fs::path torn = root / "torn";
  fs::create_directories(torn);
  Check(RunChild(torn, "store.journal.append@kind=short,nth=2") == 0,
        "torn-journal run should exit 0");
  Check(FileBytes(torn / "figure.txt") == reference,
        "torn-journal figure must match the clean run");
  // ...and a rerun over the scarred journal resumes to identical bytes.
  Check(RunChild(torn, "") == 0, "rerun over torn journal should exit 0");
  Check(FileBytes(torn / "figure.txt") == reference,
        "rerun figure must match the clean run");

  if (g_failures == 0) {
    std::printf("session crash recovery OK\n");
    return 0;
  }
  return 1;
}
