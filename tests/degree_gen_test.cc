#include <gtest/gtest.h>

#include <numeric>

#include "gen/ba.h"
#include "gen/brite.h"
#include "gen/degree_seq.h"
#include "gen/inet.h"
#include "gen/plrg.h"
#include "graph/components.h"
#include "metrics/degree.h"

namespace topogen::gen {
namespace {

using graph::Graph;
using graph::Rng;

TEST(PowerLawDegreesTest, SumIsEven) {
  Rng rng(1);
  PowerLawDegreeParams p;
  p.n = 999;
  const auto degrees = SamplePowerLawDegrees(p, rng);
  const auto sum =
      std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  EXPECT_EQ(sum % 2, 0u);
}

TEST(PowerLawDegreesTest, RespectsBounds) {
  Rng rng(2);
  PowerLawDegreeParams p;
  p.n = 2000;
  p.min_degree = 2;
  p.max_degree = 50;
  const auto degrees = SamplePowerLawDegrees(p, rng);
  for (auto d : degrees) {
    EXPECT_GE(d, 2u);
    EXPECT_LE(d, 51u);  // +1 slack for the evenness bump
  }
}

TEST(PowerLawDegreesTest, MostNodesAreDegreeOne) {
  Rng rng(3);
  PowerLawDegreeParams p;
  p.n = 5000;
  p.exponent = 2.2;
  const auto degrees = SamplePowerLawDegrees(p, rng);
  const auto ones = std::count(degrees.begin(), degrees.end(), 1u);
  EXPECT_GT(ones, 5000 * 5 / 10);
}

TEST(PowerLawMeanDegreeTest, MonotoneInExponent) {
  EXPECT_GT(PowerLawMeanDegree(2.0, 1, 1000),
            PowerLawMeanDegree(2.5, 1, 1000));
}

TEST(CalibrateExponentTest, RoundTrip) {
  for (double target : {2.5, 4.13, 6.0}) {
    const double beta = CalibrateExponent(target, 1, 2000);
    EXPECT_NEAR(PowerLawMeanDegree(beta, 1, 2000), target, 0.05)
        << "target " << target;
  }
}

TEST(PlrgTest, PaperInstanceShape) {
  Rng rng(4);
  PlrgParams p;  // n=10000, beta=2.246
  const Graph g = Plrg(p, rng);
  // Figure 1: 9230 surviving nodes, average degree 4.46. Our sampler's
  // tail cutoff differs from ACL's deterministic construction, so allow a
  // generous band -- the *qualitative* properties are what matter.
  EXPECT_GT(g.num_nodes(), 6000u);
  EXPECT_LT(g.num_nodes(), 10000u);
  EXPECT_GT(g.average_degree(), 2.5);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
}

TEST(PlrgTest, HubsExist) {
  Rng rng(5);
  PlrgParams p;
  p.n = 5000;
  const Graph g = Plrg(p, rng);
  EXPECT_GT(g.max_degree(), 50u);
}

TEST(ConnectMethodsTest, AllMethodsRealizeTheSequence) {
  Rng seq_rng(6);
  PowerLawDegreeParams dp;
  dp.n = 1200;
  dp.exponent = 2.3;
  const auto degrees = SamplePowerLawDegrees(dp, seq_rng);
  for (const ConnectMethod method : {
           ConnectMethod::kPlrgMatching,
           ConnectMethod::kRandomNodePairs,
           ConnectMethod::kProportionalHighestFirst,
           ConnectMethod::kUnsatisfiedProportionalHighestFirst,
           ConnectMethod::kUniformHighestFirst,
           ConnectMethod::kDeterministicHighestFirst,
       }) {
    Rng rng(7);
    const Graph g = ConnectDegreeSequence(degrees, method, rng,
                                          /*keep_largest_component=*/false);
    EXPECT_EQ(g.num_nodes(), 1200u) << static_cast<int>(method);
    EXPECT_GT(g.num_edges(), 0u) << static_cast<int>(method);
    // No node may exceed its assigned degree (self-loop/duplicate removal
    // only shrinks).
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_LE(g.degree(v), degrees[v]) << static_cast<int>(method);
    }
  }
}

TEST(ConnectMethodsTest, RandomishMethodsStayHeavyTailed) {
  Rng seq_rng(8);
  PowerLawDegreeParams dp;
  dp.n = 4000;
  dp.exponent = 2.2;
  const auto degrees = SamplePowerLawDegrees(dp, seq_rng);
  for (const ConnectMethod method : {
           ConnectMethod::kPlrgMatching,
           ConnectMethod::kRandomNodePairs,
           ConnectMethod::kUnsatisfiedProportionalHighestFirst,
       }) {
    Rng rng(9);
    const Graph g = ConnectDegreeSequence(degrees, method, rng);
    EXPECT_TRUE(metrics::LooksHeavyTailed(g)) << static_cast<int>(method);
  }
}

TEST(ReconnectWithPlrgTest, PreservesDegreeScale) {
  Rng a(10), b(11);
  BaParams p;
  p.n = 3000;
  const Graph original = BarabasiAlbert(p, a);
  const Graph rewired = ReconnectWithPlrg(original, b);
  // Figure 13: the rewired graph keeps the original's degree character.
  EXPECT_NEAR(rewired.average_degree(), original.average_degree(), 0.8);
  EXPECT_GT(rewired.max_degree(), original.max_degree() / 3);
}

TEST(BaTest, BasicShape) {
  Rng rng(12);
  BaParams p;
  p.n = 4000;
  p.m = 2;
  const Graph g = BarabasiAlbert(p, rng);
  EXPECT_NEAR(static_cast<double>(g.num_nodes()), 4000.0, 10.0);
  // Each arrival adds m = 2 links: average degree ~4.
  EXPECT_NEAR(g.average_degree(), 4.0, 0.4);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
}

TEST(BaTest, NoDegreeOneNodesWithMTwo) {
  Rng rng(13);
  BaParams p;
  p.n = 2000;
  p.m = 2;
  const Graph g = BarabasiAlbert(p, rng);
  // BA with m=2 gives min degree 2 (every arrival wires 2 links).
  EXPECT_EQ(g.count_degree(1), 0u);
}

TEST(ExtendedBaTest, RunsAndStaysHeavyTailed) {
  Rng rng(14);
  ExtendedBaParams p;
  p.n = 3000;
  const Graph g = ExtendedBarabasiAlbert(p, rng);
  EXPECT_GT(g.num_nodes(), 2500u);
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
}

TEST(GlpTest, BtInstanceShape) {
  Rng rng(15);
  GlpParams p;
  p.n = 4000;
  const Graph g = BuTowsleyGlp(p, rng);
  EXPECT_GT(g.num_nodes(), 3500u);
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
  // GLP's link-addition events push average degree above plain BA's 2m.
  EXPECT_GT(g.average_degree(), 2.0);
}

TEST(BriteTest, HeavyTailedPlacementShape) {
  Rng rng(16);
  BriteParams p;
  p.n = 4000;
  const Graph g = Brite(p, rng);
  EXPECT_GT(g.num_nodes(), 3900u);
  EXPECT_NEAR(g.average_degree(), 4.0, 0.5);
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
}

TEST(BriteTest, GeographicBiasStillConnects) {
  Rng rng(17);
  BriteParams p;
  p.n = 1500;
  p.geographic_bias = true;
  const Graph g = Brite(p, rng);
  EXPECT_GT(g.num_nodes(), 1400u);
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(InetTest, Shape) {
  Rng rng(18);
  InetParams p;
  p.n = 4000;
  const Graph g = Inet(p, rng);
  EXPECT_GT(g.num_nodes(), 3000u);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
}

TEST(InetTest, DegreeOneNodesSurvive) {
  // Inet's phase 2 attaches every degree-1 node to the core tree, so the
  // largest component keeps them (unlike PLRG, which orphans some).
  Rng rng(19);
  InetParams p;
  p.n = 3000;
  const Graph g = Inet(p, rng);
  EXPECT_GT(g.count_degree(1), 500u);
}

TEST(DeterministicConnectivityTest, ProducesDifferentStructure) {
  // Appendix D.1: deterministic wiring yields graphs quite unlike PLRG.
  // The deterministic method links the hub to *every* lower-degree node
  // first, creating one giant star-ish core with extreme max degree
  // utilization and far higher clustering of high-degree nodes.
  Rng seq_rng(20);
  PowerLawDegreeParams dp;
  dp.n = 2000;
  dp.exponent = 2.2;
  const auto degrees = SamplePowerLawDegrees(dp, seq_rng);
  Rng a(21), b(22);
  const Graph det = ConnectDegreeSequence(
      degrees, ConnectMethod::kDeterministicHighestFirst, a);
  const Graph plrg =
      ConnectDegreeSequence(degrees, ConnectMethod::kPlrgMatching, b);
  // Deterministic wiring satisfies virtually every stub (no collisions);
  // PLRG loses stubs to self-loops/duplicates and component extraction.
  EXPECT_GT(det.average_degree(), plrg.average_degree() * 0.9);
  EXPECT_NE(det.num_edges(), plrg.num_edges());
}

}  // namespace
}  // namespace topogen::gen
