#include "graph/maxflow.h"

#include <gtest/gtest.h>

#include "gen/canonical.h"
#include "graph/partition.h"
#include "graph/rng.h"

namespace topogen::graph {
namespace {

TEST(MaxFlowTest, PathHasFlowOne) {
  UnitMaxFlow f(gen::Linear(6));
  EXPECT_EQ(f.Solve(0, 5), 1u);
}

TEST(MaxFlowTest, CycleHasFlowTwo) {
  UnitMaxFlow f(gen::Ring(8));
  EXPECT_EQ(f.Solve(0, 4), 2u);
  EXPECT_EQ(f.Solve(1, 2), 2u);
}

TEST(MaxFlowTest, CompleteGraphFlowIsDegree) {
  // K_n: n-1 edge-disjoint paths between any pair.
  UnitMaxFlow f(gen::Complete(7));
  EXPECT_EQ(f.Solve(0, 6), 6u);
}

TEST(MaxFlowTest, GridCornerToCorner) {
  // Corner degree bounds the flow at 2.
  UnitMaxFlow f(gen::Mesh(5, 5));
  EXPECT_EQ(f.Solve(0, 24), 2u);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  UnitMaxFlow f(g);
  EXPECT_EQ(f.Solve(0, 2), 0u);
}

TEST(MaxFlowTest, SameNodeIsZero) {
  UnitMaxFlow f(gen::Ring(5));
  EXPECT_EQ(f.Solve(3, 3), 0u);
}

TEST(MaxFlowTest, SolverIsReusable) {
  UnitMaxFlow f(gen::Ring(10));
  EXPECT_EQ(f.Solve(0, 5), 2u);
  EXPECT_EQ(f.Solve(0, 5), 2u);  // capacities reset between calls
  EXPECT_EQ(f.Solve(2, 7), 2u);
}

TEST(MaxFlowTest, FlowIsSymmetric) {
  Rng rng(1);
  const Graph g = gen::ErdosRenyi(120, 0.06, rng);
  UnitMaxFlow f(g);
  for (NodeId u = 0; u < 10; ++u) {
    const NodeId v = g.num_nodes() - 1 - u;
    if (u != v) {
      EXPECT_EQ(f.Solve(u, v), f.Solve(v, u)) << u << "-" << v;
    }
  }
}

TEST(MaxFlowTest, BoundedByMinDegree) {
  Rng rng(2);
  const Graph g = gen::ErdosRenyi(200, 0.04, rng);
  UnitMaxFlow f(g);
  for (NodeId u = 1; u < 20; ++u) {
    const std::uint64_t flow = f.Solve(0, u);
    EXPECT_LE(flow, std::min(g.degree(0), g.degree(u)));
  }
}

TEST(MaxFlowTest, SolveToSetAtLeastSingleSink) {
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(100, 0.08, rng);
  UnitMaxFlow f(g);
  const std::vector<NodeId> sinks{10, 20, 30};
  const std::uint64_t set_flow = f.SolveToSet(0, sinks);
  for (const NodeId t : sinks) {
    EXPECT_GE(set_flow, f.Solve(0, t));
  }
  // And bounded by the source degree.
  EXPECT_LE(set_flow, g.degree(0));
}

TEST(MaxFlowTest, StMinCutNeverBelowBalancedCutHeuristicSanity) {
  // The balanced bisection's cut separates every cross pair, so for any
  // pair split by the heuristic's partition, max-flow (= s-t min cut)
  // is at most the heuristic's cut value. This cross-validates both.
  Rng rng(4);
  const Graph g = gen::Mesh(8, 8);
  Rng prng(5);
  const BisectionResult bisection = BalancedBisection(g, prng);
  UnitMaxFlow f(g);
  // Find one node on each side.
  NodeId a = kInvalidNode, b = kInvalidNode;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bisection.side[v] == 0 && a == kInvalidNode) a = v;
    if (bisection.side[v] == 1 && b == kInvalidNode) b = v;
  }
  ASSERT_NE(a, kInvalidNode);
  ASSERT_NE(b, kInvalidNode);
  EXPECT_LE(f.Solve(a, b), bisection.cut);
}

}  // namespace
}  // namespace topogen::graph
