// Property tests: the production link-value engine against an
// independent, brute-force reference implementation.
//
// The reference computes, for every link l = (a, b) and every ordered
// pair (u, v), the exact pair weight
//
//   w(u, v, l) = sigma(u,a) * sigma(b,v) / sigma(u,v)   if
//                d(u,a) + 1 + d(b,v) == d(u,v)          (orientation a->b)
//              + the symmetric b->a term,
//
// then forms each side's mass as the sum over its nodes of
// W(u, l) = (sum_v w) / |{v : w > 0}| and takes the min -- the definition
// ComputeLinkValues implements with Brandes accumulation and bitset
// descendant counting. Agreement across random topologies validates both
// the sigma algebra and the per-edge bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "bfs_testutil.h"
#include "gen/canonical.h"
#include "gen/plrg.h"
#include "graph/bfs.h"
#include "hierarchy/link_value.h"

namespace topogen::hierarchy {
namespace {

using graph::Dist;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;
using graph::Rng;

std::vector<double> ReferenceLinkValues(const Graph& g) {
  const NodeId n = g.num_nodes();
  // All-pairs distances and path counts.
  std::vector<std::vector<Dist>> dist(n);
  std::vector<std::vector<double>> sigma(n);
  for (NodeId s = 0; s < n; ++s) {
    const auto dag = graph::testutil::BuildShortestPathDag(g, s);
    dist[s] = dag.dist;
    sigma[s] = dag.sigma;
  }
  std::vector<double> value(g.num_edges(), 0.0);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const NodeId a = g.edges()[e].u;
    const NodeId b = g.edges()[e].v;
    double mass_a = 0.0, mass_b = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      double weight_sum = 0.0;
      std::size_t partners = 0;
      bool via_a = false;  // u enters the link at a
      for (NodeId v = 0; v < n; ++v) {
        if (v == u || dist[u][v] == kUnreachable) continue;
        double w = 0.0;
        if (dist[u][a] != kUnreachable && dist[b][v] != kUnreachable &&
            dist[u][a] + 1 + dist[b][v] == dist[u][v]) {
          w += sigma[u][a] * sigma[b][v] / sigma[u][v];
          via_a = true;
        }
        if (dist[u][b] != kUnreachable && dist[a][v] != kUnreachable &&
            dist[u][b] + 1 + dist[a][v] == dist[u][v]) {
          w += sigma[u][b] * sigma[a][v] / sigma[u][v];
        }
        if (w > 0.0) {
          weight_sum += w;
          ++partners;
        }
      }
      if (partners == 0) continue;
      (via_a ? mass_a : mass_b) += weight_sum / static_cast<double>(partners);
    }
    value[e] = std::min(mass_a, mass_b);
  }
  return value;
}

void ExpectMatches(const Graph& g, double tolerance = 1e-9) {
  const std::vector<double> reference = ReferenceLinkValues(g);
  const LinkValueResult engine = ComputeLinkValues(g);
  ASSERT_EQ(reference.size(), engine.value.size());
  for (std::size_t e = 0; e < reference.size(); ++e) {
    EXPECT_NEAR(engine.value[e], reference[e], tolerance)
        << "edge " << e << " = (" << g.edges()[e].u << ","
        << g.edges()[e].v << ")";
  }
}

TEST(LinkValueReferenceTest, Path) { ExpectMatches(gen::Linear(9)); }

TEST(LinkValueReferenceTest, Cycle) { ExpectMatches(gen::Ring(10)); }

TEST(LinkValueReferenceTest, BinaryTree) {
  ExpectMatches(gen::KaryTree(2, 4));
}

TEST(LinkValueReferenceTest, Grid) { ExpectMatches(gen::Mesh(5, 6)); }

TEST(LinkValueReferenceTest, Complete) { ExpectMatches(gen::Complete(7)); }

class LinkValueRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkValueRandomSweep, RandomGraph) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Graph g = gen::ErdosRenyi(48, 0.09, rng);
  ExpectMatches(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkValueRandomSweep,
                         ::testing::Range(1, 9));

class LinkValuePlrgSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkValuePlrgSweep, SmallPlrg) {
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  gen::PlrgParams p;
  p.n = 60;
  p.exponent = 2.1;
  const Graph g = gen::Plrg(p, rng);
  ExpectMatches(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkValuePlrgSweep, ::testing::Range(1, 7));

}  // namespace
}  // namespace topogen::hierarchy
