#include "graph/eigen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "gen/canonical.h"

namespace topogen::graph {
namespace {

TEST(SpectralRadiusTest, CompleteGraph) {
  Rng rng(1);
  // K_n adjacency has top eigenvalue n - 1.
  EXPECT_NEAR(SpectralRadius(gen::Complete(9), rng), 8.0, 1e-6);
}

TEST(SpectralRadiusTest, Star) {
  GraphBuilder b(10);
  for (NodeId i = 1; i < 10; ++i) b.AddEdge(0, i);
  Rng rng(2);
  // Star K_{1,k} has top eigenvalue sqrt(k).
  EXPECT_NEAR(SpectralRadius(std::move(b).Build(), rng), 3.0, 1e-6);
}

TEST(SpectralRadiusTest, Cycle) {
  Rng rng(3);
  EXPECT_NEAR(SpectralRadius(gen::Ring(12), rng), 2.0, 1e-4);
}

TEST(TopEigenvaluesTest, PathSpectrum) {
  // Path P_n eigenvalues: 2 cos(k pi / (n+1)), k = 1..n.
  const unsigned n = 7;
  Rng rng(4);
  const std::vector<double> eig = TopEigenvalues(gen::Linear(n), n, rng);
  ASSERT_GE(eig.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    const double expected =
        2.0 * std::cos((k + 1) * std::numbers::pi / (n + 1));
    EXPECT_NEAR(eig[k], expected, 1e-6) << "rank " << k;
  }
}

TEST(TopEigenvaluesTest, CompleteGraphMultiplicity) {
  // K_5: eigenvalues 4, -1, -1, -1, -1.
  Rng rng(5);
  const std::vector<double> eig = TopEigenvalues(gen::Complete(5), 5, rng);
  ASSERT_GE(eig.size(), 2u);
  EXPECT_NEAR(eig[0], 4.0, 1e-6);
  EXPECT_NEAR(eig[1], -1.0, 1e-5);
}

TEST(TopEigenvaluesTest, SortedDescending) {
  Rng rng(6);
  const std::vector<double> eig =
      TopEigenvalues(gen::Mesh(6, 6), 12, rng);
  for (std::size_t i = 1; i < eig.size(); ++i) {
    EXPECT_GE(eig[i - 1], eig[i] - 1e-9);
  }
}

TEST(TopEigenvaluesTest, MeshTopValue) {
  // Grid P_a x P_b top eigenvalue: 2cos(pi/(a+1)) + 2cos(pi/(b+1)).
  Rng rng(7);
  const std::vector<double> eig = TopEigenvalues(gen::Mesh(5, 5), 4, rng);
  const double expected = 4.0 * std::cos(std::numbers::pi / 6.0);
  ASSERT_FALSE(eig.empty());
  EXPECT_NEAR(eig[0], expected, 1e-5);
}

TEST(TopEigenvaluesTest, EmptyGraph) {
  Rng rng(8);
  EXPECT_TRUE(TopEigenvalues(Graph{}, 4, rng).empty());
}

TEST(TopEigenvaluesTest, RandomGraphTopMatchesPowerIteration) {
  Rng grng(9), e1(10), e2(11);
  const Graph g = gen::ErdosRenyi(200, 0.05, grng);
  const std::vector<double> eig = TopEigenvalues(g, 8, e1);
  ASSERT_FALSE(eig.empty());
  EXPECT_NEAR(eig[0], SpectralRadius(g, e2, 500), 0.05);
}

}  // namespace
}  // namespace topogen::graph
