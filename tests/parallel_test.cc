// Tests for the deterministic parallel engine (docs/PARALLELISM.md):
// chunk planning, pool execution/exception semantics, and -- the part
// that actually matters -- bit-identical metric kernel results at every
// thread count. The thread-count sweeps drive the real production
// kernels (link values, ball growing) through the pool at 1, 2, and 7
// lanes and require exact double equality, not tolerances.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gen/measured.h"
#include "gen/plrg.h"
#include "graph/rng.h"
#include "hierarchy/link_value.h"
#include "metrics/ball.h"
#include "metrics/resilience.h"
#include "obs/env.h"
#include "obs/stats.h"
#include "parallel/parallel_for.h"
#include "parallel/pool.h"

namespace topogen::parallel {
namespace {

// Rebuilds the pool for a test body and restores the environment-derived
// default afterwards, even on failure.
class PoolThreads {
 public:
  explicit PoolThreads(int threads) { Pool::SetThreadCountForTesting(threads); }
  ~PoolThreads() { Pool::SetThreadCountForTesting(0); }
};

TEST(ChunkPlanTest, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 5u, 16u, 17u, 100u, 1000u}) {
    const ChunkPlan plan = PlanChunks(n, 16, 32);
    if (n == 0) {
      EXPECT_EQ(plan.chunks, 0u);
      continue;
    }
    std::vector<int> hits(n, 0);
    std::size_t expected_begin = 0;
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      EXPECT_EQ(plan.begin(c), expected_begin);
      EXPECT_LE(plan.begin(c), plan.end(c));
      for (std::size_t i = plan.begin(c); i < plan.end(c); ++i) ++hits[i];
      expected_begin = plan.end(c);
    }
    EXPECT_EQ(expected_begin, n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ChunkPlanTest, RespectsGrainAndCap) {
  EXPECT_EQ(PlanChunks(10, 16, 32).chunks, 1u);   // below min_grain
  EXPECT_EQ(PlanChunks(64, 16, 32).chunks, 4u);   // grain-limited
  EXPECT_EQ(PlanChunks(10000, 16, 32).chunks, 32u);  // cap-limited
  // The plan is a pure function of its arguments, never of threads.
  const ChunkPlan a = PlanChunks(1234, 24, 32);
  const PoolThreads guard(7);
  const ChunkPlan b = PlanChunks(1234, 24, 32);
  EXPECT_EQ(a.chunks, b.chunks);
}

TEST(PoolTest, RunsEveryChunkExactlyOnce) {
  for (int threads : {1, 2, 7}) {
    const PoolThreads guard(threads);
    constexpr std::size_t kChunks = 101;
    std::vector<std::atomic<int>> hits(kChunks);
    Pool::Get().Run(kChunks, [&](std::size_t c) { ++hits[c]; });
    for (std::size_t c = 0; c < kChunks; ++c) {
      EXPECT_EQ(hits[c].load(), 1) << "chunk " << c << " threads " << threads;
    }
  }
}

TEST(PoolTest, ReductionFoldsInChunkOrder) {
  // String concatenation is non-commutative, so any out-of-order fold is
  // visible immediately.
  for (int threads : {1, 2, 7}) {
    const PoolThreads guard(threads);
    const ChunkPlan plan = PlanChunks(40, 1, 8);
    ASSERT_EQ(plan.chunks, 8u);
    const std::optional<std::string> out = ParallelReduce<std::string>(
        plan,
        [](std::size_t chunk, std::size_t, std::size_t) {
          return std::to_string(chunk);
        },
        [](std::string& acc, std::string&& next) { acc += next; });
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, "01234567") << "threads " << threads;
  }
}

TEST(PoolTest, EmptyReduceReturnsNullopt) {
  const std::optional<int> out = ParallelReduce<int>(
      PlanChunks(0), [](std::size_t, std::size_t, std::size_t) { return 1; },
      [](int& acc, int&& next) { acc += next; });
  EXPECT_FALSE(out.has_value());
}

TEST(PoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  for (int threads : {1, 2, 7}) {
    const PoolThreads guard(threads);
    EXPECT_THROW(
        Pool::Get().Run(64,
                        [&](std::size_t c) {
                          if (c == 13) throw std::runtime_error("boom");
                        }),
        std::runtime_error)
        << "threads " << threads;
    // The pool must quiesce and accept new regions after a throw.
    std::atomic<std::size_t> done{0};
    Pool::Get().Run(32, [&](std::size_t) { ++done; });
    EXPECT_EQ(done.load(), 32u) << "threads " << threads;
  }
}

TEST(PoolTest, NestedRegionsRunInlineWithoutDeadlock) {
  const PoolThreads guard(4);
  std::vector<std::atomic<int>> inner_hits(64);
  std::atomic<bool> saw_in_region{false};
  Pool::Get().Run(8, [&](std::size_t outer) {
    if (Pool::InRegion()) saw_in_region = true;
    ParallelForEach(8, [&](std::size_t inner) {
      ++inner_hits[outer * 8 + inner];
    });
  });
  EXPECT_TRUE(saw_in_region.load());
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    EXPECT_EQ(inner_hits[i].load(), 1) << "slot " << i;
  }
}

TEST(PoolTest, StressManySmallRegions) {
  // Hammer region setup/teardown and stealing; under
  // -DTOPOGEN_SANITIZE=thread this is the data-race probe for the
  // caller/worker handshake.
  const PoolThreads guard(4);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::size_t> out(17, 0);
    ParallelForEach(out.size(), [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
  }
}

TEST(DeriveStreamTest, DistinctAndDeterministic) {
  const std::uint64_t a = graph::DeriveStream(7, 0);
  EXPECT_EQ(a, graph::DeriveStream(7, 0));
  EXPECT_NE(a, graph::DeriveStream(7, 1));
  EXPECT_NE(a, graph::DeriveStream(8, 0));
}

// --- Bit-identity of the production kernels across thread counts ------

graph::Graph TestGraph(graph::NodeId n) {
  graph::Rng rng(91);
  gen::PlrgParams p;
  p.n = n;
  return gen::Plrg(p, rng);
}

TEST(ParallelDeterminismTest, LinkValuesBitIdenticalAcrossThreads) {
  const graph::Graph g = TestGraph(600);
  hierarchy::LinkValueOptions opts;
  opts.max_sources = 200;
  std::vector<double> reference;
  {
    const PoolThreads guard(1);
    reference = hierarchy::ComputeLinkValues(g, opts).value;
  }
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 7}) {
    const PoolThreads guard(threads);
    const std::vector<double> got = hierarchy::ComputeLinkValues(g, opts).value;
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t e = 0; e < got.size(); ++e) {
      // Exact equality: the contract is bit-identity, not tolerance.
      EXPECT_EQ(got[e], reference[e])
          << "edge " << e << " threads " << threads;
    }
  }
}

TEST(ParallelDeterminismTest, PolicyLinkValuesBitIdenticalAcrossThreads) {
  graph::Rng rng(17);
  gen::MeasuredAsParams p;
  p.n = 400;
  const gen::AsTopology as = gen::MeasuredAs(p, rng);
  hierarchy::LinkValueOptions opts;
  opts.max_sources = 150;
  std::vector<double> reference;
  {
    const PoolThreads guard(1);
    reference =
        hierarchy::ComputePolicyLinkValues(as.graph, as.relationship, opts)
            .value;
  }
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 7}) {
    const PoolThreads guard(threads);
    const std::vector<double> got =
        hierarchy::ComputePolicyLinkValues(as.graph, as.relationship, opts)
            .value;
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t e = 0; e < got.size(); ++e) {
      EXPECT_EQ(got[e], reference[e])
          << "edge " << e << " threads " << threads;
    }
  }
}

void ExpectSeriesBitIdentical(const metrics::Series& got,
                              const metrics::Series& want, int threads) {
  ASSERT_EQ(got.size(), want.size()) << "threads " << threads;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got.x[i], want.x[i]) << "point " << i << " threads " << threads;
    EXPECT_EQ(got.y[i], want.y[i]) << "point " << i << " threads " << threads;
  }
}

TEST(ParallelDeterminismTest, BallResilienceBitIdenticalAcrossThreads) {
  // Resilience consumes RNG inside every ball (randomized min-cut), and
  // the small big_ball_threshold forces the per-center skip decision --
  // the regression case for order-dependent center state: with a shared
  // RNG or a dispatch-order skip rule, threads would disagree.
  const graph::Graph g = TestGraph(1500);
  metrics::BallGrowingOptions opts;
  opts.max_centers = 12;
  opts.big_ball_threshold = 60;
  opts.big_ball_centers = 3;
  metrics::Series reference;
  {
    const PoolThreads guard(1);
    reference = metrics::Resilience(g, opts);
  }
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 7}) {
    const PoolThreads guard(threads);
    ExpectSeriesBitIdentical(metrics::Resilience(g, opts), reference, threads);
  }
}

TEST(ParallelDeterminismTest, BallSeriesIndependentOfExecutionOrder) {
  // Repeated runs at the same thread count must also agree -- stealing
  // makes the execution order different every run, and the result must
  // not care.
  const graph::Graph g = TestGraph(800);
  metrics::BallGrowingOptions opts;
  opts.max_centers = 10;
  opts.big_ball_threshold = 50;
  opts.big_ball_centers = 2;
  const PoolThreads guard(7);
  const metrics::Series first = metrics::Resilience(g, opts);
  for (int run = 0; run < 3; ++run) {
    ExpectSeriesBitIdentical(metrics::Resilience(g, opts), first, 7);
  }
}

// --- cooperative cancellation (parallel/cancel.h) ---

// Runs `fn` and requires it to throw the kCancelled taxonomy code.
template <typename Fn>
void ExpectCancelled(Fn&& fn) {
  try {
    fn();
    FAIL() << "expected fault::Exception(kCancelled)";
  } catch (const fault::Exception& e) {
    EXPECT_EQ(e.error().code, fault::ErrorCode::kCancelled);
  }
}

TEST(CancelTest, NoAmbientTokenRunsEverything) {
  ASSERT_EQ(CancelScope::Current(), nullptr);
  const ChunkPlan plan = PlanChunks(1000, 16, 32);
  std::vector<int> hits(1000, 0);
  ParallelFor(plan, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(CancelTest, PreCancelledTokenRunsNothingAndThrows) {
  CancelToken token;
  token.Cancel();
  const CancelScope scope(&token);
  std::atomic<int> ran{0};
  ExpectCancelled([&] {
    ParallelFor(PlanChunks(1000, 16, 32),
                [&](std::size_t, std::size_t, std::size_t) { ++ran; });
  });
  EXPECT_EQ(ran.load(), 0);
  ExpectCancelled([&] { ParallelForEach(8, [&](std::size_t) { ++ran; }); });
  EXPECT_EQ(ran.load(), 0);
}

TEST(CancelTest, ExpiredDeadlineStopsAtTheNextBoundary) {
  CancelToken token(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_FALSE(token.cancelled());  // deadline, not explicit cancel
  const CancelScope scope(&token);
  ExpectCancelled([&] {
    ParallelFor(PlanChunks(100, 16, 32),
                [&](std::size_t, std::size_t, std::size_t) {});
  });
}

TEST(CancelTest, CompletedChunksAreAlwaysWholeChunks) {
  // Cancel mid-region from inside a chunk body. Whatever subset of
  // chunks ran, each one must have covered its exact [begin, end) range:
  // item writes from a partially executed chunk would be a determinism
  // leak. Swept at several thread counts because stealing changes which
  // chunks run.
  for (int threads : {1, 2, 7}) {
    const PoolThreads guard(threads);
    const ChunkPlan plan = PlanChunks(1000, 16, 32);
    std::vector<int> hits(1000, 0);
    CancelToken token;
    const CancelScope scope(&token);
    ExpectCancelled([&] {
      ParallelFor(plan, [&](std::size_t chunk, std::size_t b, std::size_t e) {
        if (chunk == 3) token.Cancel();
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      });
    });
    for (std::size_t c = 0; c < plan.chunks; ++c) {
      const int first = hits[plan.begin(c)];
      EXPECT_TRUE(first == 0 || first == 1);
      for (std::size_t i = plan.begin(c); i < plan.end(c); ++i) {
        EXPECT_EQ(hits[i], first) << "chunk " << c << " ran partially";
      }
    }
  }
}

TEST(CancelTest, SingleLaneCancelIsAPrefixOfThePlan) {
  // One lane executes chunks in plan order, so the completed set is
  // exactly a deterministic prefix: chunks 0..3 and nothing after.
  const PoolThreads guard(1);
  const ChunkPlan plan = PlanChunks(1000, 16, 32);
  ASSERT_GT(plan.chunks, 5u);
  std::vector<int> chunk_ran(plan.chunks, 0);
  CancelToken token;
  const CancelScope scope(&token);
  ExpectCancelled([&] {
    ParallelFor(plan, [&](std::size_t chunk, std::size_t, std::size_t) {
      if (chunk == 3) token.Cancel();
      chunk_ran[chunk] = 1;
    });
  });
  for (std::size_t c = 0; c < plan.chunks; ++c) {
    EXPECT_EQ(chunk_ran[c], c <= 3 ? 1 : 0) << "chunk " << c;
  }
}

TEST(CancelTest, ReduceNeverFoldsAPartialResult) {
  const PoolThreads guard(7);
  CancelToken token;
  const CancelScope scope(&token);
  std::atomic<int> folds{0};
  ExpectCancelled([&] {
    ParallelReduce<long>(
        PlanChunks(1000, 16, 32),
        [&](std::size_t chunk, std::size_t b, std::size_t e) {
          if (chunk == 2) token.Cancel();
          return static_cast<long>(e - b);
        },
        [&](long& acc, long&& next) {
          ++folds;
          acc += next;
        });
  });
  EXPECT_EQ(folds.load(), 0);
}

TEST(CancelTest, AmbientTokenReachesNestedRegions) {
  // The outer region runs on pool workers; the inner ParallelFor inside
  // its body must still observe the caller's token (the chunk wrapper
  // re-establishes the scope on the worker thread).
  const PoolThreads guard(4);
  CancelToken token;
  const CancelScope scope(&token);
  ExpectCancelled([&] {
    ParallelForEach(1, [&](std::size_t) {
      EXPECT_EQ(CancelScope::Current(), &token);
      token.Cancel();
      ParallelFor(PlanChunks(100, 16, 32),
                  [](std::size_t, std::size_t, std::size_t) {});
      ADD_FAILURE() << "inner region should have thrown";
    });
  });
}

TEST(CancelTest, ScopesNestAndRestore) {
  CancelToken outer;
  CancelToken inner;
  ASSERT_EQ(CancelScope::Current(), nullptr);
  {
    const CancelScope a(&outer);
    EXPECT_EQ(CancelScope::Current(), &outer);
    {
      const CancelScope b(&inner);
      EXPECT_EQ(CancelScope::Current(), &inner);
      {
        const CancelScope shield(nullptr);
        EXPECT_EQ(CancelScope::Current(), nullptr);
      }
      EXPECT_EQ(CancelScope::Current(), &inner);
    }
    EXPECT_EQ(CancelScope::Current(), &outer);
  }
  EXPECT_EQ(CancelScope::Current(), nullptr);
}

TEST(CancelTest, CompletedRegionWithLateCancelDoesNotThrow) {
  // Cancelling after the last chunk started never discards a finished
  // result: the region only throws when a chunk was actually skipped.
  const ChunkPlan plan = PlanChunks(10, 16, 32);
  ASSERT_EQ(plan.chunks, 1u);
  CancelToken token;
  const CancelScope scope(&token);
  int ran = 0;
  ParallelFor(plan, [&](std::size_t, std::size_t, std::size_t) {
    ++ran;
    token.Cancel();  // too late: this chunk is the whole region
  });
  EXPECT_EQ(ran, 1);
}

// --- concurrent external callers (topogend's executor lanes) ---

std::uint64_t BusySerialCount() {
  for (const auto& [name, value] : obs::Stats::CounterSnapshot()) {
    if (name == "parallel.busy_serial") return value;
  }
  return 0;
}

// The pool holds one region at a time; a second external caller (another
// topogend executor lane) must not deadlock or corrupt either region --
// it runs its chunks inline and counts the fallback.
TEST(PoolBusyTest, ConcurrentExternalCallerRunsSerialInline) {
  // Counter bumps are gated on observability being enabled at all.
  ::setenv("TOPOGEN_STATS", "/dev/null", 1);
  obs::Env::ResetForTesting();
  PoolThreads pool(4);
  std::atomic<bool> occupying{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    Pool::Get().Run(4, [&](std::size_t) {
      occupying = true;
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  while (!occupying.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The fleet is provably owned by `holder`; this caller must fall back.
  const std::uint64_t before = BusySerialCount();
  std::atomic<std::uint64_t> sum{0};
  Pool::Get().Run(8, [&](std::size_t chunk) { sum += chunk; });
  EXPECT_EQ(sum.load(), 28u) << "fallback must still run every chunk";
  EXPECT_EQ(BusySerialCount(), before + 1);
  release = true;
  holder.join();
  ::unsetenv("TOPOGEN_STATS");
  obs::Env::ResetForTesting();
}

}  // namespace
}  // namespace topogen::parallel
