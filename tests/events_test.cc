// Tests for the structured JSONL runtime event log (src/obs/events.h):
// the builder's disabled-is-inert contract, the TOPOGEN_EVENTS path
// grammar, line-level schema validity (every line a JSON object with
// ts_us/type/tid, run_start first, timestamps monotone), and the
// regression the flush audit exists for -- a degraded run must leave a
// parseable events.jsonl and trace.json behind.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/session.h"
#include "fault/fault.h"
#include "obs/json.h"
#include "obs/obs.h"

namespace topogen::obs {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> ReadLines(const fs::path& p) {
  std::ifstream is(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Parses every line and checks the fields every record type carries;
// fills `records` for type-specific assertions. (Out-parameter because
// ASSERT_* requires a void-returning function.)
void ExpectValidEventLog(const fs::path& p, std::vector<Json>& records) {
  const std::vector<std::string> lines = ReadLines(p);
  records.clear();
  EXPECT_FALSE(lines.empty()) << p << " is empty";
  double prev_ts = -1.0;
  for (const std::string& line : lines) {
    std::optional<Json> doc = Json::Parse(line);
    ASSERT_TRUE(doc.has_value()) << "unparseable line: " << line;
    ASSERT_TRUE(doc->is_object()) << line;
    const Json* ts = doc->Find("ts_us");
    const Json* type = doc->Find("type");
    const Json* tid = doc->Find("tid");
    ASSERT_NE(ts, nullptr) << line;
    ASSERT_NE(type, nullptr) << line;
    ASSERT_NE(tid, nullptr) << line;
    EXPECT_TRUE(ts->is_number());
    EXPECT_TRUE(type->is_string());
    EXPECT_TRUE(tid->is_number());
    EXPECT_GE(ts->AsDouble(), prev_ts) << "timestamps must be monotone";
    prev_ts = ts->AsDouble();
    records.push_back(std::move(*doc));
  }
  EXPECT_EQ(records.front().Find("type")->AsString(), "run_start");
}

bool HasEventOfType(const std::vector<Json>& records,
                    std::string_view type) {
  for (const Json& rec : records) {
    if (rec.Find("type")->AsString() == type) return true;
  }
  return false;
}

class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "topogen_events_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ClearEnv();
  }

  void TearDown() override {
    ClearEnv();
    fs::remove_all(dir_);
  }

  void ClearEnv() {
    ::unsetenv("TOPOGEN_EVENTS");
    ::unsetenv("TOPOGEN_HIST");
    ::unsetenv("TOPOGEN_TRACE");
    ::unsetenv("TOPOGEN_STATS");
    ::unsetenv("TOPOGEN_OUTDIR");
    Env::ResetForTesting();
    EventLog::Get().ResetForTesting();
    Tracer::Get().DiscardForTesting();
    Stats::ResetForTesting();
  }

  void SetEnv(const char* name, const std::string& value) {
    ::setenv(name, value.c_str(), 1);
    Env::ResetForTesting();
    EventLog::Get().ResetForTesting();
  }

  fs::path dir_;
};

TEST_F(EventsTest, DisabledBuilderIsInert) {
  EXPECT_FALSE(EventsEnabled());
  Event e("cache");
  EXPECT_FALSE(e.active());
  e.Str("kind", "topology").U64("n", 1);  // must be safe no-ops
  EXPECT_EQ(EventLog::Get().lines_written(), 0u);
}

TEST_F(EventsTest, PathGrammar) {
  // Truthy values route to <outdir>/events.jsonl; falsy values disable
  // even with an outdir; a value with a slash is an explicit path.
  SetEnv("TOPOGEN_OUTDIR", dir_.string());
  SetEnv("TOPOGEN_EVENTS", "1");
  EXPECT_TRUE(Env::Get().events_enabled());
  EXPECT_EQ(Env::Get().events_path(),
            (fs::path(dir_) / "events.jsonl").string());
  SetEnv("TOPOGEN_EVENTS", "0");
  EXPECT_FALSE(Env::Get().events_enabled());
  SetEnv("TOPOGEN_EVENTS", "off");
  EXPECT_FALSE(Env::Get().events_enabled());
  const std::string explicit_path = (dir_ / "custom_events.jsonl").string();
  SetEnv("TOPOGEN_EVENTS", explicit_path);
  EXPECT_TRUE(Env::Get().events_enabled());
  EXPECT_EQ(Env::Get().events_path(), explicit_path);
}

TEST_F(EventsTest, EveryLineIsASchemaValidRecord) {
  const fs::path path = dir_ / "ev.jsonl";
  SetEnv("TOPOGEN_EVENTS", path.string());
  ASSERT_TRUE(EventsEnabled());
  {
    Span span("events_test.phase", "test");
    Event("cache").Str("kind", "topology").Str("op", "miss");
  }
  Event("custom").U64("answer", 42).Dbl("ratio", 1.5).I64("delta", -3);
  ASSERT_TRUE(EventLog::Get().Flush());
  EXPECT_GE(EventLog::Get().lines_written(), 5u);  // header + 4 records

  std::vector<Json> records;
  ExpectValidEventLog(path, records);
  if (HasFatalFailure()) return;
  EXPECT_TRUE(HasEventOfType(records, "phase_start"));
  EXPECT_TRUE(HasEventOfType(records, "phase_end"));
  EXPECT_TRUE(HasEventOfType(records, "cache"));
  for (const Json& rec : records) {
    if (rec.Find("type")->AsString() != "custom") continue;
    EXPECT_EQ(rec.Find("answer")->AsDouble(), 42.0);
    EXPECT_EQ(rec.Find("ratio")->AsDouble(), 1.5);
    EXPECT_EQ(rec.Find("delta")->AsDouble(), -3.0);
  }
}

TEST_F(EventsTest, FlushRunArtifactsWritesEveryConfiguredSink) {
  const fs::path events = dir_ / "ev.jsonl";
  const fs::path trace = dir_ / "trace.json";
  const fs::path stats = dir_ / "stats.json";
  SetEnv("TOPOGEN_EVENTS", events.string());
  SetEnv("TOPOGEN_TRACE", trace.string());
  SetEnv("TOPOGEN_STATS", stats.string());
  { Span span("events_test.flush", "test"); }
  FlushRunArtifacts();
  std::vector<Json> records;
  ExpectValidEventLog(events, records);
  std::ifstream tis(trace);
  std::stringstream tss;
  tss << tis.rdbuf();
  EXPECT_TRUE(Json::Parse(tss.str()).has_value());
  std::ifstream sis(stats);
  std::stringstream sss;
  sss << sis.rdbuf();
  EXPECT_TRUE(Json::Parse(sss.str()).has_value());
}

// The flush-audit regression: a run that degrades a roster slot must
// still leave a complete, parseable events.jsonl (with the degraded
// record) and trace.json -- this is what bench::Finish's partial-success
// flush guarantees for exit-75 runs.
class EventsDegradedTest : public EventsTest {
 protected:
  void SetUp() override {
    EventsTest::SetUp();
    if (!fault::CompiledIn()) {
      GTEST_SKIP() << "fault points compiled out (TOPOGEN_FAULT_POINTS=OFF)";
    }
    fault::Disarm();
  }
  void TearDown() override {
    if (fault::CompiledIn()) fault::Disarm();
    EventsTest::TearDown();
  }
};

TEST_F(EventsDegradedTest, DegradedRunLeavesParseableArtifacts) {
  const fs::path events = dir_ / "ev.jsonl";
  const fs::path trace = dir_ / "trace.json";
  SetEnv("TOPOGEN_EVENTS", events.string());
  SetEnv("TOPOGEN_TRACE", trace.string());

  core::SessionOptions opts;
  opts.roster.seed = 9;
  opts.roster.as_nodes = 400;
  opts.roster.rl_expansion_ratio = 3.0;
  opts.roster.plrg_nodes = 1000;
  opts.roster.degree_based_nodes = 800;
  opts.suite.ball.max_centers = 4;
  opts.suite.ball.big_ball_centers = 2;
  opts.suite.expansion.max_sources = 200;
  core::Session session(opts);
  fault::ArmForTesting("gen.validate@match=Mesh");
  EXPECT_EQ(session.TryMetrics("Mesh"), nullptr);
  ASSERT_EQ(session.degraded().size(), 1u);
  FlushRunArtifacts();

  std::vector<Json> records;
  ExpectValidEventLog(events, records);
  if (HasFatalFailure()) return;
  EXPECT_TRUE(HasEventOfType(records, "fault"));
  bool saw_degraded = false;
  for (const Json& rec : records) {
    if (rec.Find("type")->AsString() != "degraded") continue;
    saw_degraded = true;
    EXPECT_EQ(rec.Find("kind")->AsString(), "topology");
    EXPECT_EQ(rec.Find("id")->AsString(), "Mesh");
    EXPECT_EQ(rec.Find("code")->AsString(), "retry_exhausted");
    EXPECT_EQ(rec.Find("attempts")->AsDouble(), 3.0);
  }
  EXPECT_TRUE(saw_degraded);

  std::ifstream tis(trace);
  std::stringstream tss;
  tss << tis.rdbuf();
  const std::optional<Json> tdoc = Json::Parse(tss.str());
  ASSERT_TRUE(tdoc.has_value());
  EXPECT_NE(tdoc->Find("traceEvents"), nullptr);
}

}  // namespace
}  // namespace topogen::obs
