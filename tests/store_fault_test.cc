// Chaos tests for the store layer: every injected write/read fault must
// demote the artifact to a cache miss -- never hand back wrong bytes --
// and the journal/prune seams must stay crash- and race-safe.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fault/fault.h"
#include "store/artifact.h"
#include "store/hash.h"
#include "store/journal.h"

namespace topogen::store {
namespace {

namespace fs = std::filesystem;

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::CompiledIn()) {
      GTEST_SKIP() << "fault points compiled out (TOPOGEN_FAULT_POINTS=OFF)";
    }
    fault::Disarm();
    root_ = fs::temp_directory_path() /
            ("topogen_store_fault_" + std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(root_);
  }
  void TearDown() override {
    fault::Disarm();
    fs::remove_all(root_);
  }

  fs::path root_;
};

TEST_F(StoreFaultTest, TornWriteDemotesToMissThenRecovers) {
  ArtifactStore store(root_.string());
  const Key key = KeyHasher().Mix("torn").Finish();
  const std::string payload = "the quick brown fox jumps over the lazy dog";

  fault::ArmForTesting("store.write.torn@nth=1");
  EXPECT_TRUE(store.Store("topology", key, payload));  // rename still lands
  EXPECT_EQ(fault::FiredCount("store.write.torn"), 1u);
  std::string loaded = "sentinel";
  EXPECT_FALSE(store.Load("topology", key, loaded));  // truncated body: miss

  // The recompute path overwrites the torn entry with good bytes.
  EXPECT_TRUE(store.Store("topology", key, payload));
  ASSERT_TRUE(store.Load("topology", key, loaded));
  EXPECT_EQ(loaded, payload);
}

TEST_F(StoreFaultTest, EnospcFailsTheWriteCleanly) {
  ArtifactStore store(root_.string());
  const Key key = KeyHasher().Mix("enospc").Finish();

  fault::ArmForTesting("store.write.enospc@nth=1");
  EXPECT_FALSE(store.Store("metrics", key, "payload"));
  EXPECT_FALSE(store.Contains("metrics", key));

  // The disk "recovers": the same store object keeps working.
  EXPECT_TRUE(store.Store("metrics", key, "payload"));
  std::string loaded;
  ASSERT_TRUE(store.Load("metrics", key, loaded));
  EXPECT_EQ(loaded, "payload");
}

TEST_F(StoreFaultTest, CorruptedWriteIsCaughtByTheChecksum) {
  ArtifactStore store(root_.string());
  const Key key = KeyHasher().Mix("corrupt-write").Finish();

  fault::ArmForTesting("store.write.corrupt@nth=1");
  EXPECT_TRUE(store.Store("metrics", key, "precious payload bytes"));
  fault::Disarm();

  // The flipped byte went to disk under the true payload's checksum, so
  // the load must reject it rather than return wrong bytes.
  std::string loaded = "sentinel";
  EXPECT_FALSE(store.Load("metrics", key, loaded));
  EXPECT_TRUE(store.Store("metrics", key, "precious payload bytes"));
  ASSERT_TRUE(store.Load("metrics", key, loaded));
  EXPECT_EQ(loaded, "precious payload bytes");
}

TEST_F(StoreFaultTest, CorruptedReadIsAMissNotWrongBytes) {
  ArtifactStore store(root_.string());
  const Key key = KeyHasher().Mix("corrupt-read").Finish();
  const std::string payload = "bytes that must round-trip exactly";
  ASSERT_TRUE(store.Store("topology", key, payload));

  fault::ArmForTesting("store.read.corrupt@nth=1");
  std::string loaded = "sentinel";
  EXPECT_FALSE(store.Load("topology", key, loaded));
  EXPECT_EQ(fault::FiredCount("store.read.corrupt"), 1u);

  // The on-disk artifact was never touched: the next read is clean.
  ASSERT_TRUE(store.Load("topology", key, loaded));
  EXPECT_EQ(loaded, payload);
}

TEST_F(StoreFaultTest, TornJournalAppendSealsAndReRuns) {
  fs::create_directories(root_);
  const std::string path = (root_ / "journal.log").string();
  {
    Journal j(path);
    fault::ArmForTesting("store.journal.append@nth=1");
    j.MarkDone("topology/torn", "00aa");
    // In-process bookkeeping keeps the id (the artifact really exists)...
    EXPECT_TRUE(j.IsDone("topology/torn"));
    // ...and the next append must seal the partial line, not merge.
    j.MarkDone("metrics/clean", "00bb");
  }
  fault::Disarm();
  Journal resumed(path);
  // The torn record reads as not-done (job re-runs on resume); the sealed
  // one survives.
  EXPECT_FALSE(resumed.IsDone("topology/torn"));
  EXPECT_TRUE(resumed.IsDone("metrics/clean"));
  EXPECT_EQ(resumed.resumed_count(), 1u);
}

TEST_F(StoreFaultTest, PruneSurvivesInjectedRace) {
  ArtifactStore store(root_.string());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Store("topology", KeyHasher().Mix("p").Mix(i).Finish(),
                            std::string(512, 'x')));
  }
  // The injected throw unwinds PruneImpl mid-eviction; the public Prune
  // contract (never throws, destructor-safe) must absorb it.
  fault::ArmForTesting("store.prune.race@nth=1");
  EXPECT_NO_THROW(store.Prune(0));
  fault::Disarm();
  // A retry finishes the eviction.
  store.Prune(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(store.Contains("topology",
                                KeyHasher().Mix("p").Mix(i).Finish()));
  }
}

TEST(StorePruneTest, VanishedCacheDirIsEmptyNotFatal) {
  // No fault injection involved: the directory genuinely disappears
  // between construction and Prune (another process pruned it, tmpwatch,
  // a container teardown). Must behave as an empty cache.
  const fs::path root = fs::temp_directory_path() / "topogen_prune_vanish";
  fs::remove_all(root);
  ArtifactStore store(root.string());
  ASSERT_TRUE(store.Store("topology", KeyHasher().Mix("v").Finish(), "x"));
  fs::remove_all(root);
  std::size_t deleted = 1;
  EXPECT_NO_THROW(deleted = store.Prune(0));
  EXPECT_EQ(deleted, 0u);
}

}  // namespace
}  // namespace topogen::store
