#include "gen/canonical.h"

#include <gtest/gtest.h>

#include "graph/components.h"

namespace topogen::gen {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

TEST(KaryTreeTest, PaperInstanceHas1093Nodes) {
  const Graph g = KaryTree(3, 6);
  EXPECT_EQ(g.num_nodes(), 1093u);
  EXPECT_EQ(g.num_edges(), 1092u);
  EXPECT_NEAR(g.average_degree(), 2.0, 0.01);  // Figure 1: 2.00
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(KaryTreeTest, DegreesAreTreeLike) {
  const Graph g = KaryTree(3, 3);  // 40 nodes
  EXPECT_EQ(g.degree(0), 3u);                  // root
  EXPECT_EQ(g.degree(1), 4u);                  // internal: parent + 3
  EXPECT_EQ(g.degree(g.num_nodes() - 1), 1u);  // leaf
}

TEST(KaryTreeTest, BinaryDepthOne) {
  const Graph g = KaryTree(2, 1);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(KaryTreeTest, UnaryIsPath) {
  const Graph g = KaryTree(1, 5);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(KaryTreeTest, ZeroKThrows) {
  EXPECT_THROW(KaryTree(0, 3), std::invalid_argument);
}

TEST(MeshTest, PaperInstance) {
  const Graph g = Mesh(30, 30);
  EXPECT_EQ(g.num_nodes(), 900u);
  EXPECT_EQ(g.num_edges(), 2u * 30u * 29u);
  EXPECT_NEAR(g.average_degree(), 3.87, 0.01);  // Figure 1: 3.87
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(MeshTest, CornerAndInteriorDegrees) {
  const Graph g = Mesh(5, 5);
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(g.degree(2), 3u);       // border
  EXPECT_EQ(g.degree(12), 4u);      // interior
}

TEST(MeshTest, SingleRowIsPath) {
  const Graph g = Mesh(1, 10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(LinearTest, Basics) {
  const Graph g = Linear(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 2u);
}

TEST(CompleteTest, Basics) {
  const Graph g = Complete(10);
  EXPECT_EQ(g.num_edges(), 45u);
  EXPECT_EQ(g.max_degree(), 9u);
}

TEST(RingTest, AllDegreeTwo) {
  const Graph g = Ring(12);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.count_degree(2), 12u);
}

TEST(ErdosRenyiTest, PaperInstanceMatchesFigure1) {
  Rng rng(7);
  const Graph g = ErdosRenyi(5050, 0.0008, rng);
  // Figure 1: 5018 nodes, average degree 4.18 after largest component.
  EXPECT_NEAR(static_cast<double>(g.num_nodes()), 5018.0, 120.0);
  EXPECT_NEAR(g.average_degree(), 4.18, 0.35);
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(ErdosRenyiTest, EdgeCountConcentrates) {
  Rng rng(9);
  const Graph g = ErdosRenyi(1000, 0.01, rng, false);
  const double expected = 0.01 * 1000 * 999 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 350.0);
}

TEST(ErdosRenyiTest, ZeroProbabilityIsEdgeless) {
  Rng rng(11);
  const Graph g = ErdosRenyi(50, 0.0, rng, false);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ErdosRenyiTest, DeterministicForSeed) {
  Rng a(13), b(13);
  const Graph g1 = ErdosRenyi(200, 0.02, a);
  const Graph g2 = ErdosRenyi(200, 0.02, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(ErdosRenyiGnmTest, ExactEdgeCount) {
  Rng rng(15);
  const Graph g = ErdosRenyiGnm(100, 300, rng, false);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(ErdosRenyiGnmTest, CapsAtCompleteGraph) {
  Rng rng(17);
  const Graph g = ErdosRenyiGnm(6, 1000, rng, false);
  EXPECT_EQ(g.num_edges(), 15u);
}

}  // namespace
}  // namespace topogen::gen
