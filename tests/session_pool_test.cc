// core::SessionPool: the executor-affine LRU of resident Sessions that
// topogend's lanes own (docs/SERVICE.md). Factories here count their
// invocations, so hit/miss/eviction behavior is proved without computing
// any metrics.
#include "core/session_pool.h"

#include <string>

#include <gtest/gtest.h>

#include "core/scale.h"

namespace topogen::core {
namespace {

// A Session cheap enough to build in a loop: nothing is computed until a
// metric is asked for, and these tests never ask.
std::unique_ptr<Session> TinySession() {
  SessionOptions o = ScaledSessionOptions("small");
  o.roster.as_nodes = 50;
  o.journal_path.clear();
  return std::make_unique<Session>(std::move(o));
}

TEST(SessionPoolTest, AcquireBuildsOncePerKey) {
  SessionPool pool(4);
  int built = 0;
  const auto factory = [&built] {
    ++built;
    return TinySession();
  };
  Session& first = pool.Acquire("a", factory);
  Session& again = pool.Acquire("a", factory);
  EXPECT_EQ(&first, &again) << "hit must return the resident Session";
  EXPECT_EQ(built, 1);
  pool.Acquire("b", factory);
  EXPECT_EQ(built, 2);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(SessionPoolTest, EvictsLeastRecentlyUsedBeyondCapacity) {
  SessionPool pool(2);
  int built = 0;
  const auto factory = [&built] {
    ++built;
    return TinySession();
  };
  pool.Acquire("a", factory);
  pool.Acquire("b", factory);
  pool.Acquire("a", factory);  // refresh "a": "b" is now the LRU
  pool.Acquire("c", factory);  // evicts "b"
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(built, 3);
  pool.Acquire("a", factory);  // still resident
  EXPECT_EQ(built, 3);
  pool.Acquire("b", factory);  // was evicted: rebuilt
  EXPECT_EQ(built, 4);
}

TEST(SessionPoolTest, CapacityZeroClampsToOne) {
  SessionPool pool(0);
  int built = 0;
  const auto factory = [&built] {
    ++built;
    return TinySession();
  };
  pool.Acquire("a", factory);
  pool.Acquire("a", factory);
  EXPECT_EQ(built, 1);
  EXPECT_EQ(pool.size(), 1u);
  pool.Acquire("b", factory);
  EXPECT_EQ(pool.size(), 1u) << "one resident Session, not zero";
}

TEST(SessionPoolTest, AggregateStatsSumsResidentSessions) {
  SessionPool pool(2);
  const auto factory = [] { return TinySession(); };
  pool.Acquire("a", factory);
  pool.Acquire("b", factory);
  const CacheStats stats = pool.AggregateStats();
  // Fresh Sessions have touched nothing; the sum over both is all zeros.
  EXPECT_EQ(stats.metrics_hits, 0u);
  EXPECT_EQ(stats.metrics_misses, 0u);
}

}  // namespace
}  // namespace topogen::core
