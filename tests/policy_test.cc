#include <gtest/gtest.h>

#include "bfs_testutil.h"
#include "gen/measured.h"
#include "graph/bfs.h"
#include "policy/paths.h"
#include "policy/policy_ball.h"
#include "policy/relationships.h"

namespace topogen::policy {
namespace {

using graph::Dist;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;
using graph::Rng;

// A small two-provider hierarchy (paper Appendix E's Figure 15 in spirit):
//
//        P0 ------ P1        (peer-peer)
//       /  \      /  .
//      C2   C3  C4    C5     (customers)
//      |
//      D6                    (customer of C2)
//
// Edge list with explicit relationships.
struct Annotated {
  Graph g;
  std::vector<Relationship> rel;
};

Annotated TwoProviderHierarchy() {
  Annotated a;
  a.g = Graph::FromEdges(7, {{0, 1},
                             {0, 2},
                             {0, 3},
                             {1, 4},
                             {1, 5},
                             {2, 6}});
  a.rel.assign(a.g.num_edges(), Relationship::kProviderCustomer);
  // Canonical edges are sorted: (0,1), (0,2), (0,3), (1,4), (1,5), (2,6).
  a.rel[a.g.edge_id(0, 1)] = Relationship::kPeerPeer;
  return a;
}

TEST(PolicyStepTest, TransitionTable) {
  unsigned next;
  EXPECT_TRUE(PolicyStep(kPhaseUp, Traversal::kUp, next));
  EXPECT_EQ(next, kPhaseUp);
  EXPECT_TRUE(PolicyStep(kPhaseUp, Traversal::kPeer, next));
  EXPECT_EQ(next, kPhaseDown);
  EXPECT_TRUE(PolicyStep(kPhaseUp, Traversal::kDown, next));
  EXPECT_EQ(next, kPhaseDown);
  EXPECT_TRUE(PolicyStep(kPhaseUp, Traversal::kSibling, next));
  EXPECT_EQ(next, kPhaseUp);
  EXPECT_TRUE(PolicyStep(kPhaseDown, Traversal::kDown, next));
  EXPECT_EQ(next, kPhaseDown);
  EXPECT_TRUE(PolicyStep(kPhaseDown, Traversal::kSibling, next));
  EXPECT_EQ(next, kPhaseDown);
  EXPECT_FALSE(PolicyStep(kPhaseDown, Traversal::kUp, next));
  EXPECT_FALSE(PolicyStep(kPhaseDown, Traversal::kPeer, next));
}

TEST(TraversalFromTest, OrientationFollowsCanonicalEdge) {
  const Annotated a = TwoProviderHierarchy();
  const graph::EdgeId e = a.g.edge_id(0, 2);  // P0 provider of C2
  EXPECT_EQ(TraversalFrom(a.g, a.rel, e, 0), Traversal::kDown);
  EXPECT_EQ(TraversalFrom(a.g, a.rel, e, 2), Traversal::kUp);
  const graph::EdgeId peer = a.g.edge_id(0, 1);
  EXPECT_EQ(TraversalFrom(a.g, a.rel, peer, 0), Traversal::kPeer);
  EXPECT_EQ(TraversalFrom(a.g, a.rel, peer, 1), Traversal::kPeer);
}

TEST(PolicyDistancesTest, ValleyFreePathsExist) {
  const Annotated a = TwoProviderHierarchy();
  const auto d = PolicyDistances(a.g, a.rel, 2);  // from C2
  EXPECT_EQ(d[2], 0u);
  EXPECT_EQ(d[0], 1u);   // up to provider
  EXPECT_EQ(d[3], 2u);   // up, down to sibling customer
  EXPECT_EQ(d[6], 1u);   // down to own customer
  EXPECT_EQ(d[1], 2u);   // up, peer
  EXPECT_EQ(d[4], 3u);   // up, peer, down
}

TEST(PolicyDistancesTest, ValleyPathsAreForbidden) {
  // C2 -> P0 -> C3 is fine, but C3 -> P0 -> P1 via peer after down... Build
  // a graph where the only hop-shortest path has a valley: two providers
  // with a shared customer but no peering.
  //
  //   P0    P1
  //     \  /
  //      C2
  Graph g = Graph::FromEdges(3, {{0, 2}, {1, 2}});
  std::vector<Relationship> rel(2, Relationship::kProviderCustomer);
  const auto d = PolicyDistances(g, rel, 0);
  EXPECT_EQ(d[2], 1u);
  // P0 -> C2 -> P1 climbs after descending: forbidden.
  EXPECT_EQ(d[1], kUnreachable);
}

TEST(PolicyDistancesTest, PeerOnlyOnceAtApex) {
  // Chain of peers: A -peer- B -peer- C. Valley-free allows exactly one
  // peer edge, so A cannot reach C.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  std::vector<Relationship> rel(2, Relationship::kPeerPeer);
  const auto d = PolicyDistances(g, rel, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(PolicyDistancesTest, SiblingsAreTransparent) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  std::vector<Relationship> rel(2, Relationship::kSiblingSibling);
  const auto d = PolicyDistances(g, rel, 0);
  EXPECT_EQ(d[2], 2u);
}

TEST(PolicyDistancesTest, AtLeastShortestPath) {
  Rng rng(1);
  gen::MeasuredAsParams p;
  p.n = 600;
  const gen::AsTopology as = gen::MeasuredAs(p, rng);
  const auto plain = graph::testutil::BfsDistances(as.graph, 0);
  const auto policy = PolicyDistances(as.graph, as.relationship, 0);
  for (NodeId v = 0; v < as.graph.num_nodes(); ++v) {
    if (policy[v] != kUnreachable) {
      EXPECT_GE(policy[v], plain[v]);
    }
  }
}

TEST(PolicyDistancesTest, SymmetricOnAnnotatedAsGraph) {
  Rng rng(2);
  gen::MeasuredAsParams p;
  p.n = 300;
  const gen::AsTopology as = gen::MeasuredAs(p, rng);
  // Valley-free reversibility: d_pol(u, v) == d_pol(v, u).
  for (NodeId u : {NodeId{0}, NodeId{17}, NodeId{101}}) {
    const auto from_u = PolicyDistances(as.graph, as.relationship, u);
    for (NodeId v : {NodeId{5}, NodeId{42}, NodeId{201}}) {
      const auto from_v = PolicyDistances(as.graph, as.relationship, v);
      EXPECT_EQ(from_u[v], from_v[u]) << u << " <-> " << v;
    }
  }
}

TEST(PolicyPathLengthTest, InflatesAveragePath) {
  // [42]: policy routing inflates paths. Compare averages over the SAME
  // pair set (policy-reachable pairs) -- the unrestricted policy average
  // can come out *shorter* because long-haul pairs drop out of
  // reachability, which is exactly the subtlety this test pins down.
  Rng rng(3);
  gen::MeasuredAsParams p;
  p.n = 800;
  const gen::AsTopology as = gen::MeasuredAs(p, rng);
  double plain_total = 0, policy_total = 0;
  std::size_t pairs = 0;
  for (NodeId src = 0; src < as.graph.num_nodes(); src += 13) {
    const auto dp = graph::testutil::BfsDistances(as.graph, src);
    const auto dq = PolicyDistances(as.graph, as.relationship, src);
    for (NodeId v = 0; v < as.graph.num_nodes(); ++v) {
      if (v == src || dq[v] == kUnreachable) continue;
      EXPECT_GE(dq[v], dp[v]);
      plain_total += dp[v];
      policy_total += dq[v];
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 0u);
  EXPECT_GE(policy_total, plain_total);
  // And the inflation is real, not degenerate equality everywhere.
  EXPECT_GT(policy_total, plain_total * 1.0005);
}

TEST(InferRelationshipsTest, HubIsProvider) {
  // Star: center 0 with 6 leaves -> center is everyone's provider.
  graph::GraphBuilder b(7);
  for (NodeId i = 1; i < 7; ++i) b.AddEdge(0, i);
  const Graph g = std::move(b).Build();
  const auto rel = InferRelationshipsByDegree(g);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    // Canonical edges are (0, leaf): u = 0 is the higher-degree provider.
    EXPECT_EQ(rel[e], Relationship::kProviderCustomer);
  }
}

TEST(InferRelationshipsTest, EqualDegreesPeer) {
  const Graph g = Graph::FromEdges(2, {{0, 1}});
  const auto rel = InferRelationshipsByDegree(g);
  EXPECT_EQ(rel[0], Relationship::kPeerPeer);
}

TEST(PolicyBallTest, RadiusLimitsMembership) {
  const Annotated a = TwoProviderHierarchy();
  const PolicyBall ball = GrowPolicyBall(a.g, a.rel, 2, 1);
  // C2's radius-1 policy ball: C2, P0, D6.
  EXPECT_EQ(ball.subgraph.graph.num_nodes(), 3u);
}

TEST(PolicyBallTest, ExcludesNonCompliantLinks) {
  // Two providers sharing customer C2, no peering. From P0, the policy
  // ball of radius 2 must not include P1 or the C2-P1 link.
  Graph g = Graph::FromEdges(3, {{0, 2}, {1, 2}});
  std::vector<Relationship> rel(2, Relationship::kProviderCustomer);
  const PolicyBall ball = GrowPolicyBall(g, rel, 0, 2);
  EXPECT_EQ(ball.subgraph.graph.num_nodes(), 2u);
  EXPECT_EQ(ball.subgraph.graph.num_edges(), 1u);
}

TEST(PolicyBallTest, MatchesPlainBallWhenAllSiblings) {
  Rng rng(5);
  const Graph g = gen::MeasuredAs({.n = 300}, rng).graph;
  const std::vector<Relationship> rel(g.num_edges(),
                                      Relationship::kSiblingSibling);
  for (const NodeId center : {NodeId{0}, NodeId{11}}) {
    for (const Dist r : {Dist{1}, Dist{2}, Dist{3}}) {
      const PolicyBall pb = GrowPolicyBall(g, rel, center, r);
      EXPECT_EQ(pb.subgraph.graph.num_nodes(),
                graph::testutil::Ball(g, center, r).size())
          << "center " << center << " radius " << r;
    }
  }
}

TEST(PolicyBallTest, DistancesAreStoredPerNode) {
  const Annotated a = TwoProviderHierarchy();
  const PolicyBall ball = GrowPolicyBall(a.g, a.rel, 2, 3);
  for (std::size_t i = 0; i < ball.subgraph.original_id.size(); ++i) {
    if (ball.subgraph.original_id[i] == 2) {
      EXPECT_EQ(ball.policy_dist[i], 0u);
    }
    EXPECT_LE(ball.policy_dist[i], 3u);
  }
}

TEST(AnnotateRouterLinksTest, IntraAsIsSibling) {
  Rng rng(6);
  gen::MeasuredRlParams p;
  p.as_params.n = 300;
  const gen::RlTopology rl = gen::MeasuredRl(p, rng);
  const auto rel = AnnotateRouterLinks(rl.graph, rl.as_of,
                                       rl.as_topology.graph,
                                       rl.as_topology.relationship);
  for (graph::EdgeId e = 0; e < rl.graph.num_edges(); ++e) {
    const graph::Edge& ed = rl.graph.edges()[e];
    if (rl.as_of[ed.u] == rl.as_of[ed.v]) {
      EXPECT_EQ(rel[e], Relationship::kSiblingSibling);
    } else {
      EXPECT_NE(rel[e], Relationship::kSiblingSibling);
    }
  }
}

TEST(AnnotateRouterLinksTest, OrientationTracksAsRelationship) {
  Rng rng(7);
  gen::MeasuredRlParams p;
  p.as_params.n = 300;
  const gen::RlTopology rl = gen::MeasuredRl(p, rng);
  const auto rel = AnnotateRouterLinks(rl.graph, rl.as_of,
                                       rl.as_topology.graph,
                                       rl.as_topology.relationship);
  for (graph::EdgeId e = 0; e < rl.graph.num_edges(); ++e) {
    const graph::Edge& ed = rl.graph.edges()[e];
    const auto au = rl.as_of[ed.u], av = rl.as_of[ed.v];
    if (au == av) continue;
    // The traversal class seen from router ed.u must equal the class seen
    // from AS au on the AS edge.
    const graph::EdgeId ase = rl.as_topology.graph.edge_id(au, av);
    ASSERT_NE(ase, graph::kInvalidEdge);
    const Traversal router_view = TraversalFrom(rl.graph, rel, e, ed.u);
    const Traversal as_view = TraversalFrom(
        rl.as_topology.graph, rl.as_topology.relationship, ase, au);
    EXPECT_EQ(router_view, as_view);
  }
}

}  // namespace
}  // namespace topogen::policy
