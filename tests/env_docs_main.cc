// Documentation drift gate for the environment-variable reference.
//
// docs/INDEX.md carries the one authoritative TOPOGEN_* table; obs::Env
// carries the registry the binaries actually honor. This ctest diffs the
// two sets of names -- a variable added to the code without a docs row
// (or documented but unregistered) fails the build's test stage with the
// exact difference. Usage: env_docs_test <path-to-INDEX.md>.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "obs/env.h"

namespace {

// Every `TOPOGEN_*` token appearing in a markdown table row (a line
// starting with '|') of the doc. Restricting to table rows keeps prose
// mentions of a variable from masking a missing table entry.
std::set<std::string> DocumentedVars(std::istream& in) {
  std::set<std::string> vars;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] != '|') continue;
    std::size_t pos = 0;
    while ((pos = line.find("TOPOGEN_", pos)) != std::string::npos) {
      std::size_t end = pos;
      while (end < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[end])) != 0 ||
              line[end] == '_')) {
        ++end;
      }
      vars.insert(line.substr(pos, end - pos));
      pos = end;
    }
  }
  return vars;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <path-to-INDEX.md>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", argv[1]);
    return 1;
  }
  const std::set<std::string> documented = DocumentedVars(in);

  std::set<std::string> registered;
  for (const topogen::obs::EnvVarInfo& var :
       topogen::obs::Env::RegisteredVars()) {
    registered.insert(std::string(var.name));
  }

  int failures = 0;
  for (const std::string& name : registered) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "FAIL: %s is registered in obs::Env but missing from the "
                   "docs/INDEX.md table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (registered.count(name) == 0) {
      std::fprintf(stderr,
                   "FAIL: %s appears in the docs/INDEX.md table but is not "
                   "registered in obs::Env\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures != 0) return 1;
  std::printf("env-var table matches obs::Env (%zu variables)\n",
              registered.size());
  return 0;
}
