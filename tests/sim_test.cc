#include <gtest/gtest.h>

#include <cmath>

#include "bfs_testutil.h"
#include "gen/canonical.h"
#include "gen/plrg.h"
#include "graph/bfs.h"
#include "sim/protocols.h"
#include "sim/weighted_paths.h"

namespace topogen::sim {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

TEST(WeightedPathsTest, UnitWeightsMatchBfs) {
  const Graph g = gen::Mesh(6, 6);
  Rng rng(1);
  const auto weight = SampleLinkWeights(g, WeightModel::kUnit, rng);
  const WeightedPathResult r = WeightedShortestPaths(g, weight, 0);
  const auto bfs = graph::testutil::BfsDistances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(r.distance[v], static_cast<double>(bfs[v]));
    EXPECT_EQ(r.hops[v], bfs[v]);
  }
}

TEST(WeightedPathsTest, ParentsFormShortestPathTree) {
  Rng rng(2);
  const Graph g = gen::ErdosRenyi(200, 0.04, rng);
  const auto weight = SampleLinkWeights(g, WeightModel::kUniform, rng);
  const WeightedPathResult r = WeightedShortestPaths(g, weight, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (std::isinf(r.distance[v]) || v == 0) continue;
    const NodeId p = r.parent[v];
    ASSERT_NE(p, graph::kInvalidNode);
    const graph::EdgeId e = g.edge_id(p, v);
    ASSERT_NE(e, graph::kInvalidEdge);
    EXPECT_NEAR(r.distance[v], r.distance[p] + weight[e], 1e-12);
  }
}

TEST(WeightedPathsTest, WeightedHopsAtLeastBfsHops) {
  Rng rng(3);
  const Graph g = gen::ErdosRenyi(300, 0.03, rng);
  const auto weight = SampleLinkWeights(g, WeightModel::kExponential, rng);
  const WeightedPathResult r = WeightedShortestPaths(g, weight, 0);
  const auto bfs = graph::testutil::BfsDistances(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (bfs[v] == graph::kUnreachable) continue;
    EXPECT_GE(r.hops[v], bfs[v]) << "weighted route shorter than BFS?";
  }
}

TEST(WeightModelTest, ExponentialMeanIsOne) {
  const Graph g = gen::Complete(60);  // ~1770 samples
  Rng rng(4);
  const auto w = SampleLinkWeights(g, WeightModel::kExponential, rng);
  double mean = 0;
  for (double x : w) mean += x;
  mean /= static_cast<double>(w.size());
  EXPECT_NEAR(mean, 1.0, 0.1);
}

TEST(HopCountDistributionTest, SumsToOne) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(400, 0.02, rng);
  const auto dist = HopCountDistribution(g, WeightModel::kExponential, 16,
                                         rng);
  double total = 0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(HopCountDistributionTest, WeightedPathsAreLonger) {
  // Van Mieghem's setup: weighted routing takes more hops on average than
  // hop-count routing (it detours over cheap links).
  Rng a(6), b(6);
  const Graph g = gen::ErdosRenyi(500, 0.015, a);
  const auto unit = HopCountDistribution(g, WeightModel::kUnit, 16, b);
  const auto expw =
      HopCountDistribution(g, WeightModel::kExponential, 16, b);
  auto mean_of = [](const std::vector<double>& d) {
    double m = 0;
    for (std::size_t h = 0; h < d.size(); ++h) {
      m += static_cast<double>(h) * d[h];
    }
    return m;
  };
  EXPECT_GE(mean_of(expw), mean_of(unit));
}

TEST(FloodSpreadTest, ReachesEveryoneAndIsMonotone) {
  Rng rng(7);
  gen::PlrgParams p;
  p.n = 1500;
  const Graph g = gen::Plrg(p, rng);
  const metrics::Series s = FloodSpread(g, {.trials = 8, .seed = 8});
  ASSERT_EQ(s.size(), 10u);
  EXPECT_NEAR(s.y.back(), 1.0, 1e-9);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s.x[i], s.x[i - 1] - 1e-12) << "decile times must be sorted";
  }
}

TEST(FloodSpreadTest, ExpanderFloodsFasterThanChain) {
  Rng a(9), b(9);
  const Graph expander = gen::ErdosRenyi(600, 0.012, a);
  const Graph chain = gen::Linear(600);
  const metrics::Series fast = FloodSpread(expander, {.trials = 8});
  const metrics::Series slow = FloodSpread(chain, {.trials = 8});
  ASSERT_FALSE(fast.empty());
  ASSERT_FALSE(slow.empty());
  // Time to reach 90%: an expander is far quicker.
  EXPECT_LT(fast.x[8], 0.5 * slow.x[8]);
  (void)b;
}

TEST(MulticastStateTest, StateGrowsWithReceivers) {
  Rng rng(10);
  gen::PlrgParams p;
  p.n = 2000;
  const Graph g = gen::Plrg(p, rng);
  const MulticastStateResult r = MulticastState(g);
  ASSERT_GT(r.routers_with_state.size(), 3u);
  EXPECT_GT(r.routers_with_state.y.back(), r.routers_with_state.y.front());
  // State never exceeds the node count.
  for (double y : r.routers_with_state.y) {
    EXPECT_LE(y, static_cast<double>(g.num_nodes()));
  }
}

TEST(MulticastStateTest, HubTopologyConcentratesState) {
  // Wong-Katz qualitative finding: state concentration differs across
  // topologies. A PLRG funnels multicast state into hubs; a mesh spreads
  // it.
  Rng rng(11);
  gen::PlrgParams p;
  p.n = 900;
  const Graph plrg = gen::Plrg(p, rng);
  const Graph mesh = gen::Mesh(30, 30);
  const MulticastStateResult hub = MulticastState(plrg);
  const MulticastStateResult flat = MulticastState(mesh);
  ASSERT_FALSE(hub.max_state.empty());
  ASSERT_FALSE(flat.max_state.empty());
  EXPECT_GT(hub.max_state.y.back(), 1.8 * flat.max_state.y.back());
}

TEST(FailoverTest, StretchAtLeastOneAndDisconnectionGrows) {
  Rng rng(12);
  const Graph g = gen::ErdosRenyi(800, 0.006, rng);
  const FailoverResult r = FailoverStretch(g);
  ASSERT_FALSE(r.stretch.empty());
  for (double y : r.stretch.y) {
    if (y > 0) {
      EXPECT_GE(y, 1.0 - 1e-9);
    }
  }
  // Disconnection is (weakly) monotone under nested failure sets.
  for (std::size_t i = 1; i < r.disconnected.size(); ++i) {
    EXPECT_GE(r.disconnected.y[i], r.disconnected.y[i - 1] - 1e-12);
  }
}

TEST(FailoverTest, TreeDisconnectsRandomSurvives) {
  Rng rng(14);
  const Graph tree = gen::KaryTree(3, 6);
  const Graph random = gen::ErdosRenyi(1100, 4.0 / 1100, rng);
  const FailoverResult t = FailoverStretch(tree, {.seed = 13});
  const FailoverResult r = FailoverStretch(random, {.seed = 13});
  ASSERT_FALSE(t.disconnected.empty());
  ASSERT_FALSE(r.disconnected.empty());
  // Every failed tree link cuts pairs immediately; the random graph
  // barely notices the first failure slice and ends far less broken.
  EXPECT_GT(t.disconnected.y.front(), 0.01);
  EXPECT_GT(t.disconnected.y.front(), r.disconnected.y.front() + 0.01);
  EXPECT_GT(t.disconnected.y.back(), r.disconnected.y.back());
}

}  // namespace
}  // namespace topogen::sim
