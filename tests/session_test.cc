#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/session.h"
#include "parallel/pool.h"

namespace topogen::core {
namespace {

namespace fs = std::filesystem;

class PoolThreads {
 public:
  explicit PoolThreads(int threads) {
    parallel::Pool::SetThreadCountForTesting(threads);
  }
  ~PoolThreads() { parallel::Pool::SetThreadCountForTesting(0); }
};

fs::path FreshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

// Small enough that a full cold topology+metrics+linkvalue pass is quick;
// large enough that the kernels actually fan out.
SessionOptions SmallOptions(const std::string& cache_dir = {},
                            const std::string& journal_path = {}) {
  SessionOptions o;
  o.roster.seed = 9;
  o.roster.as_nodes = 400;
  o.roster.rl_expansion_ratio = 3.0;
  o.roster.plrg_nodes = 1000;
  o.roster.degree_based_nodes = 800;
  o.suite.ball.max_centers = 4;
  o.suite.ball.big_ball_centers = 2;
  o.suite.expansion.max_sources = 200;
  o.link_value.max_sources = 120;
  o.cache_dir = cache_dir;
  o.journal_path = journal_path;
  return o;
}

void ExpectSameSeries(const metrics::Series& a, const metrics::Series& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.x, b.x);  // exact double equality: cached == fresh, no epsilon
  EXPECT_EQ(a.y, b.y);
}

void ExpectSameMetrics(const BasicMetrics& a, const BasicMetrics& b) {
  ExpectSameSeries(a.expansion, b.expansion);
  ExpectSameSeries(a.resilience, b.resilience);
  ExpectSameSeries(a.distortion, b.distortion);
  EXPECT_EQ(a.signature, b.signature);
}

TEST(SessionTest, UnknownIdThrows) {
  Session session(SmallOptions());
  EXPECT_THROW(session.Topology("NoSuchTopology"), std::invalid_argument);
  EXPECT_THROW(session.Metrics("NoSuchTopology"), std::invalid_argument);
}

TEST(SessionTest, PolicyLinkValuesOnUnannotatedTopologyThrow) {
  Session session(SmallOptions());
  EXPECT_THROW(session.LinkValues("PLRG", /*use_policy=*/true),
               std::invalid_argument);
}

TEST(SessionTest, InMemoryDedup) {
  Session session(SmallOptions());
  EXPECT_FALSE(session.cache_enabled());
  const BasicMetrics* first = &session.Metrics("Tree");
  const BasicMetrics* second = &session.Metrics("Tree");
  EXPECT_EQ(first, second);
  EXPECT_EQ(session.cache_stats().metrics_misses, 1u);

  // Duplicate batch entries collapse onto one job and one stored result.
  const std::vector<Session::MetricsRequest> requests = {
      {"Mesh"}, {"Tree"}, {"Mesh"}};
  const auto batch = session.MetricsBatch(requests);
  EXPECT_EQ(batch[0], batch[2]);
  EXPECT_EQ(batch[1], first);
  EXPECT_EQ(session.cache_stats().metrics_misses, 2u);
}

TEST(SessionTest, RlCoreIsDerivedAndAnnotated) {
  Session session(SmallOptions());
  const core::Topology& core_t = session.Topology("RL.core");
  const core::Topology& rl = session.Topology("RL");
  EXPECT_EQ(core_t.name, "RL.core");
  EXPECT_TRUE(core_t.has_policy());
  EXPECT_LT(core_t.graph.num_nodes(), rl.graph.num_nodes());
  for (graph::NodeId v = 0; v < core_t.graph.num_nodes(); ++v) {
    EXPECT_GE(core_t.graph.degree(v), 2u) << "node " << v;
  }
}

TEST(SessionTest, TopologyRoundTripsThroughCache) {
  const fs::path dir = FreshDir("topogen_session_topo_cache");
  const SessionOptions opts = SmallOptions(dir.string());

  std::vector<graph::Edge> cold_edges;
  std::vector<policy::Relationship> cold_rel;
  {
    Session cold(opts);
    ASSERT_TRUE(cold.cache_enabled());
    const core::Topology& as = cold.Topology("AS");
    cold_edges = as.graph.edges();
    cold_rel = as.relationship;
    EXPECT_EQ(cold.cache_stats().topology_misses, 1u);
    EXPECT_EQ(cold.cache_stats().topology_hits, 0u);
  }
  {
    Session warm(opts);
    const core::Topology& as = warm.Topology("AS");
    EXPECT_EQ(warm.cache_stats().topology_hits, 1u);
    EXPECT_EQ(warm.cache_stats().topology_misses, 0u);
    EXPECT_EQ(as.name, "AS");
    EXPECT_EQ(as.graph.edges(), cold_edges);
    EXPECT_EQ(as.relationship, cold_rel);
    EXPECT_TRUE(as.has_policy());
  }
  fs::remove_all(dir);
}

TEST(SessionTest, CachedMetricsAreByteIdenticalAcrossThreadCounts) {
  const fs::path cache_a = FreshDir("topogen_session_threads_a");
  const fs::path cache_b = FreshDir("topogen_session_threads_b");

  // Cold compute at 1 thread into cache A.
  BasicMetrics cold;
  {
    const PoolThreads guard(1);
    Session session(SmallOptions(cache_a.string()));
    cold = session.Metrics("PLRG");
    EXPECT_EQ(session.cache_stats().metrics_misses, 1u);
  }
  // Warm load at 4 threads from cache A: identical, and the topology is
  // never even materialized (keys derive from options, not graph bytes).
  {
    const PoolThreads guard(4);
    Session session(SmallOptions(cache_a.string()));
    const BasicMetrics& warm = session.Metrics("PLRG");
    ExpectSameMetrics(warm, cold);
    EXPECT_EQ(session.cache_stats().metrics_hits, 1u);
    EXPECT_EQ(session.cache_stats().metrics_misses, 0u);
    EXPECT_EQ(session.cache_stats().topology_hits +
                  session.cache_stats().topology_misses,
              0u);
  }
  // Cold compute at 4 threads into cache B: the kernels themselves are
  // thread-invariant, so even a fresh run matches byte for byte.
  {
    const PoolThreads guard(4);
    Session session(SmallOptions(cache_b.string()));
    ExpectSameMetrics(session.Metrics("PLRG"), cold);
    EXPECT_EQ(session.cache_stats().metrics_misses, 1u);
  }
  fs::remove_all(cache_a);
  fs::remove_all(cache_b);
}

TEST(SessionTest, CachedLinkValuesAreByteIdenticalAcrossThreadCounts) {
  const fs::path dir = FreshDir("topogen_session_lv_cache");
  const SessionOptions opts = SmallOptions(dir.string());

  std::vector<double> cold_values;
  graph::NodeId cold_nodes = 0;
  {
    const PoolThreads guard(1);
    Session session(opts);
    const hierarchy::LinkValueResult& lv = session.LinkValues("AS");
    cold_values = lv.value;
    cold_nodes = lv.num_nodes;
    EXPECT_EQ(session.cache_stats().linkvalue_misses, 1u);
  }
  {
    const PoolThreads guard(4);
    Session session(opts);
    const hierarchy::LinkValueResult& lv = session.LinkValues("AS");
    EXPECT_EQ(lv.value, cold_values);  // exact doubles
    EXPECT_EQ(lv.num_nodes, cold_nodes);
    EXPECT_EQ(session.cache_stats().linkvalue_hits, 1u);
    EXPECT_EQ(session.cache_stats().topology_hits +
                  session.cache_stats().topology_misses,
              0u);
  }
  fs::remove_all(dir);
}

TEST(SessionTest, CorruptedCacheEntriesAreRecomputedTransparently) {
  const fs::path dir = FreshDir("topogen_session_corrupt");
  const SessionOptions opts = SmallOptions(dir.string());

  BasicMetrics cold;
  {
    Session session(opts);
    cold = session.Metrics("Mesh");
  }
  // Vandalize every artifact in the cache.
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  {
    Session session(opts);
    const BasicMetrics& recomputed = session.Metrics("Mesh");
    ExpectSameMetrics(recomputed, cold);
    EXPECT_EQ(session.cache_stats().metrics_hits, 0u);
    EXPECT_EQ(session.cache_stats().metrics_misses, 1u);
  }
  fs::remove_all(dir);
}

TEST(SessionTest, OptionChangesChangeTheKey) {
  const fs::path dir = FreshDir("topogen_session_keys");
  {
    Session session(SmallOptions(dir.string()));
    session.Metrics("Tree");
  }
  {
    SessionOptions opts = SmallOptions(dir.string());
    opts.roster.seed = 10;  // different topology => different metrics key
    Session session(opts);
    session.Metrics("Tree");
    EXPECT_EQ(session.cache_stats().metrics_hits, 0u);
    EXPECT_EQ(session.cache_stats().metrics_misses, 1u);
  }
  {
    SessionOptions opts = SmallOptions(dir.string());
    opts.suite.expansion.max_sources = 150;  // different suite options
    Session session(opts);
    session.Metrics("Tree");
    EXPECT_EQ(session.cache_stats().metrics_hits, 0u);
    // The topology itself is unchanged, so a (miss-driven) materialize
    // still hits the topology cache.
    EXPECT_EQ(session.cache_stats().topology_hits, 1u);
  }
  fs::remove_all(dir);
}

TEST(SessionTest, JournalResumeAfterTruncation) {
  const fs::path dir = FreshDir("topogen_session_journal");
  fs::create_directories(dir);
  const std::string journal = (dir / "journal.log").string();
  const SessionOptions opts = SmallOptions((dir / "cache").string(), journal);

  {
    Session session(opts);
    session.Metrics("Tree");  // journals the topology, then the metrics
  }
  ASSERT_TRUE(fs::exists(journal));

  // An intact journal: both jobs resume as journal skips.
  {
    Session session(opts);
    session.Topology("Tree");
    session.Metrics("Tree");
    EXPECT_EQ(session.cache_stats().journal_skips, 2u);
    EXPECT_EQ(session.cache_stats().topology_misses, 0u);
    EXPECT_EQ(session.cache_stats().metrics_misses, 0u);
  }

  // Simulate a crash mid-append: cut into the final (metrics) line. The
  // artifact itself still serves from the store -- only the completion
  // record is lost -- and the parser must not trip on the partial line.
  std::ifstream in(journal, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), {});
  in.close();
  ASSERT_GT(bytes.size(), 8u);
  std::ofstream out(journal, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 8));
  out.close();

  {
    Session session(opts);
    session.Topology("Tree");  // intact line: a journal skip
    session.Metrics("Tree");   // truncated line: warm hit, not a skip
    EXPECT_EQ(session.cache_stats().journal_skips, 1u);
    EXPECT_EQ(session.cache_stats().topology_hits, 1u);
    EXPECT_EQ(session.cache_stats().metrics_hits, 1u);
  }
  fs::remove_all(dir);
}

TEST(SessionTest, CacheBudgetLeavesCachesUnderBudgetIntact) {
  // Eviction itself is unit-tested at the store layer
  // (ArtifactStoreTest.PruneEvictsDownToBudget); here we check the Session
  // wiring: a budget that the cache fits in deletes nothing at destruction.
  const fs::path dir = FreshDir("topogen_session_evict");
  SessionOptions opts = SmallOptions(dir.string());
  {
    Session session(opts);
    session.Topology("Tree");
    session.Topology("Mesh");
  }
  std::size_t before = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    before += entry.is_regular_file() ? 1 : 0;
  }
  ASSERT_GE(before, 2u);

  opts.cache_max_mb = 64;  // far above what these tiny graphs occupy
  {
    Session session(opts);
    session.Topology("Tree");
  }
  std::size_t after = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    after += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(after, before);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace topogen::core
