// Tests for the small infrastructure pieces: Rng determinism, geometry
// helpers, the report writers, and the Series container.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/report.h"
#include "gen/geometry.h"
#include "graph/rng.h"
#include "metrics/series.h"

namespace topogen {
namespace {

TEST(RngTest, DeterministicForSeed) {
  graph::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextIndex(1000), b.NextIndex(1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  graph::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.NextIndex(1 << 30) == b.NextIndex(1 << 30);
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextIndexInRange) {
  graph::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextIndex(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  graph::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  graph::Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  graph::Rng parent(13);
  graph::Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  graph::Rng reference(13);
  reference.NextIndex(100);  // consume the draw Fork() took
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    same += child.NextIndex(1 << 30) == reference.NextIndex(1 << 30);
  }
  EXPECT_LT(same, 3);
}

TEST(SplitMixTest, AvalanchesNearbySeeds) {
  // Neighbouring seeds must map to very different states.
  const std::uint64_t a = graph::SplitMix64(1);
  const std::uint64_t b = graph::SplitMix64(2);
  int differing_bits = 0;
  for (std::uint64_t diff = a ^ b; diff != 0; diff >>= 1) {
    differing_bits += static_cast<int>(diff & 1);
  }
  EXPECT_GT(differing_bits, 16);
}

TEST(GeometryTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(gen::Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(gen::Distance({1, 1}, {1, 1}), 0.0);
}

TEST(GeometryTest, UniformPointsInUnitSquare) {
  graph::Rng rng(1);
  for (const gen::Point& p : gen::UniformPoints(500, rng)) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(GeometryTest, HeavyTailPointsCluster) {
  graph::Rng rng(2);
  const auto pts = gen::HeavyTailPoints(2000, 8, rng);
  ASSERT_EQ(pts.size(), 2000u);
  // Count per-cell occupancy; heavy-tailed placement must produce at
  // least one cell far above the uniform expectation of 2000/64.
  std::vector<int> cell(64, 0);
  for (const gen::Point& p : pts) {
    const int cx = std::min(7, static_cast<int>(p.x * 8));
    const int cy = std::min(7, static_cast<int>(p.y * 8));
    ++cell[cy * 8 + cx];
  }
  EXPECT_GT(*std::max_element(cell.begin(), cell.end()), 3 * 2000 / 64);
}

TEST(GeometryTest, EuclideanMstIsConnectedAndShortish) {
  graph::Rng rng(3);
  const auto pts = gen::UniformPoints(200, rng);
  const auto parent = gen::EuclideanMst(pts);
  ASSERT_EQ(parent.size(), 200u);
  EXPECT_EQ(parent[0], 0u);
  // Every node reaches the root.
  for (std::size_t v = 0; v < parent.size(); ++v) {
    std::size_t cur = v, steps = 0;
    while (cur != 0) {
      cur = parent[cur];
      ASSERT_LT(++steps, parent.size());
    }
  }
  // Total MST length for n uniform points is ~0.65*sqrt(n).
  double total = 0;
  for (std::size_t v = 1; v < parent.size(); ++v) {
    total += gen::Distance(pts[v], pts[parent[v]]);
  }
  EXPECT_LT(total, 1.3 * std::sqrt(200.0));
  EXPECT_GT(total, 0.3 * std::sqrt(200.0));
}

TEST(SeriesTest, AddAndAccess) {
  metrics::Series s;
  EXPECT_TRUE(s.empty());
  s.Add(1.0, 2.0);
  s.Add(3.0, 4.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.back_y(), 4.0);
}

TEST(ReportTest, NumTrimsPrecision) {
  EXPECT_EQ(core::Num(2.5), "2.5");
  EXPECT_EQ(core::Num(2.0), "2");
  EXPECT_EQ(core::Num(0.0008), "0.0008");
  EXPECT_EQ(core::Num(1234.5678, 6), "1234.57");
}

TEST(ReportTest, NumStaysFixedPointForSmallMagnitudes) {
  // Values the default ostream formatting would render in scientific
  // notation must come out fixed-point so table columns stay readable.
  EXPECT_EQ(core::Num(0.0000123, 6), "0.0000123");
  EXPECT_EQ(core::Num(0.00001, 6), "0.00001");
  EXPECT_EQ(core::Num(2.5e-7, 3), "0.00000025");
  EXPECT_EQ(core::Num(1.5e7, 6), "15000000");
  EXPECT_EQ(core::Num(-0.0000123, 6), "-0.0000123");
  EXPECT_EQ(core::Num(0.0, 6), "0");
}

TEST(ReportTest, PanelFormat) {
  metrics::Series s;
  s.name = "curveA";
  s.Add(1, 0.5);
  std::ostringstream os;
  core::PrintPanel(os, "2a", "Expansion, Canonical", {s});
  const std::string out = os.str();
  EXPECT_NE(out.find("# panel 2a Expansion, Canonical"), std::string::npos);
  EXPECT_NE(out.find("# curve curveA"), std::string::npos);
  EXPECT_NE(out.find("1 0.5"), std::string::npos);
}

TEST(ReportTest, TableAlignment) {
  std::ostringstream os;
  core::PrintTableHeader(os, {"A", "B"});
  core::PrintTableRow(os, {"x", "y"});
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
}

}  // namespace
}  // namespace topogen
