// Golden equivalence suite for the epoch-stamped BFS engine
// (docs/PERFORMANCE.md): the in-place kernels must reproduce the
// pre-engine reference implementations *exactly* -- distances, discovery
// order, level counts, and shortest-path counts bit-for-bit -- across
// sparse and dense regimes, including graphs dense enough to flip the
// direction-optimizing crossover to bottom-up. A second group pins the
// zero-steady-state-allocation contract via the unconditional
// graph.bfs_alloc counters, serially and inside a parallel region.
#include "graph/bfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bfs_testutil.h"
#include "gen/canonical.h"
#include "gen/plrg.h"
#include "gen/transit_stub.h"
#include "graph/bfs_scratch.h"
#include "graph/rng.h"
#include "obs/stats.h"
#include "parallel/parallel_for.h"
#include "parallel/pool.h"
#include "parallel/scratch_pool.h"

namespace topogen::graph {
namespace {

using testutil::BfsDistances;
using testutil::Ball;
using testutil::BuildShortestPathDag;
using testutil::ReachableCounts;
using testutil::ShortestPathDag;

// --- reference implementations -----------------------------------------
// Textbook queue-based BFS, transcribed from the pre-engine kernels.
// Deliberately naive: fresh O(n) buffers, single direction, no epochs.

std::vector<Dist> RefDistances(const Graph& g, NodeId src,
                               Dist max_depth = kUnreachable) {
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  if (src >= g.num_nodes()) return dist;
  dist[src] = 0;
  std::vector<NodeId> queue{src};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    if (dist[u] >= max_depth) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> RefBall(const Graph& g, NodeId center, Dist radius) {
  if (center >= g.num_nodes()) return {};
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  dist[center] = 0;
  std::vector<NodeId> queue{center};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    if (dist[u] >= radius) continue;
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return queue;
}

std::vector<std::size_t> RefReachableCounts(const Graph& g, NodeId src,
                                            Dist max_depth = kUnreachable) {
  const std::vector<Dist> dist = RefDistances(g, src, max_depth);
  Dist ecc = 0;
  bool any = false;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != kUnreachable) {
      any = true;
      ecc = std::max(ecc, dist[v]);
    }
  }
  if (!any) return {};
  std::vector<std::size_t> counts(ecc + 1, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dist[v] != kUnreachable) ++counts[dist[v]];
  }
  for (std::size_t h = 1; h < counts.size(); ++h) counts[h] += counts[h - 1];
  return counts;
}

struct RefDag {
  std::vector<Dist> dist;
  std::vector<double> sigma;
  std::vector<NodeId> order;
};

RefDag RefShortestPathDag(const Graph& g, NodeId src) {
  RefDag dag;
  dag.dist.assign(g.num_nodes(), kUnreachable);
  dag.sigma.assign(g.num_nodes(), 0.0);
  if (src >= g.num_nodes()) return dag;
  dag.dist[src] = 0;
  dag.sigma[src] = 1.0;
  dag.order.push_back(src);
  for (std::size_t head = 0; head < dag.order.size(); ++head) {
    const NodeId u = dag.order[head];
    const Dist du = dag.dist[u];
    for (NodeId v : g.neighbors(u)) {
      if (dag.dist[v] == kUnreachable) {
        dag.dist[v] = du + 1;
        dag.order.push_back(v);
      }
      if (dag.dist[v] == du + 1) dag.sigma[v] += dag.sigma[u];
    }
  }
  return dag;
}

// The graph roster every golden test sweeps: the paper's two generator
// families plus canonical shapes, with ErdosRenyi(300, 0.5) and
// Complete(64) dense enough to exercise the bottom-up branch.
std::vector<Graph> GoldenGraphs() {
  std::vector<Graph> graphs;
  graphs.push_back(gen::Linear(17));
  graphs.push_back(gen::KaryTree(3, 5));
  graphs.push_back(gen::Complete(64));
  {
    graph::Rng rng(101);
    graphs.push_back(gen::ErdosRenyi(300, 0.5, rng));
  }
  {
    graph::Rng rng(102);
    graphs.push_back(gen::ErdosRenyi(400, 0.01, rng));
  }
  {
    graph::Rng rng(103);
    gen::PlrgParams p;
    p.n = 1200;
    graphs.push_back(gen::Plrg(p, rng));
  }
  {
    graph::Rng rng(104);
    graphs.push_back(gen::TransitStub({}, rng));
  }
  // Two components plus an isolated node.
  graphs.push_back(Graph::FromEdges(9, {{0, 1}, {1, 2}, {3, 4}, {4, 5},
                                        {5, 3}, {6, 7}}));
  return graphs;
}

std::vector<NodeId> TestSources(const Graph& g) {
  std::vector<NodeId> srcs{0};
  if (g.num_nodes() > 1) srcs.push_back(g.num_nodes() - 1);
  if (g.num_nodes() > 7) srcs.push_back(g.num_nodes() / 2);
  return srcs;
}

TEST(BfsEngineGolden, DistancesMatchReferenceEverywhere) {
  for (const Graph& g : GoldenGraphs()) {
    for (const NodeId src : TestSources(g)) {
      EXPECT_EQ(BfsDistances(g, src), RefDistances(g, src))
          << "n=" << g.num_nodes() << " src=" << src;
      EXPECT_EQ(BfsDistances(g, src, 2), RefDistances(g, src, 2))
          << "n=" << g.num_nodes() << " src=" << src << " depth-limited";
    }
  }
}

TEST(BfsEngineGolden, BallPreservesExactDiscoveryOrder) {
  for (const Graph& g : GoldenGraphs()) {
    for (const NodeId src : TestSources(g)) {
      for (const Dist radius : {Dist{0}, Dist{1}, Dist{3}, kUnreachable}) {
        EXPECT_EQ(Ball(g, src, radius), RefBall(g, src, radius))
            << "n=" << g.num_nodes() << " src=" << src << " r=" << radius;
      }
    }
  }
}

TEST(BfsEngineGolden, ReachableCountsMatchReference) {
  for (const Graph& g : GoldenGraphs()) {
    for (const NodeId src : TestSources(g)) {
      EXPECT_EQ(ReachableCounts(g, src), RefReachableCounts(g, src))
          << "n=" << g.num_nodes() << " src=" << src;
    }
  }
}

TEST(BfsEngineGolden, ShortestPathDagMatchesReferenceExactly) {
  for (const Graph& g : GoldenGraphs()) {
    for (const NodeId src : TestSources(g)) {
      const ShortestPathDag got = BuildShortestPathDag(g, src);
      const RefDag want = RefShortestPathDag(g, src);
      EXPECT_EQ(got.dist, want.dist);
      EXPECT_EQ(got.order, want.order);
      // sigma is integral counting accumulated in the same order, so
      // equality is exact, not approximate.
      EXPECT_EQ(got.sigma, want.sigma)
          << "n=" << g.num_nodes() << " src=" << src;
    }
  }
}

TEST(BfsEngineGolden, DerivedScalarsMatchReference) {
  for (const Graph& g : GoldenGraphs()) {
    for (const NodeId src : TestSources(g)) {
      const std::vector<Dist> dist = RefDistances(g, src);
      Dist ecc = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (dist[v] != kUnreachable) ecc = std::max(ecc, dist[v]);
      }
      EXPECT_EQ(Eccentricity(g, src), ecc);
    }
    // AveragePathLength over the engine's deterministic source stride,
    // recomputed with reference BFS.
    const NodeId n = g.num_nodes();
    if (n < 2) continue;
    const std::size_t use = std::min<std::size_t>(16, n);
    const std::size_t stride = (n + use - 1) / use;
    double total = 0.0;
    std::size_t pairs = 0;
    for (NodeId src = 0; src < n; src += static_cast<NodeId>(stride)) {
      const std::vector<Dist> dist = RefDistances(g, src);
      for (NodeId v = 0; v < n; ++v) {
        if (dist[v] != kUnreachable) {
          total += dist[v];
          if (v != src) ++pairs;
        }
      }
    }
    const double want = pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
    EXPECT_DOUBLE_EQ(AveragePathLength(g, 16), want) << "n=" << n;
  }
}

// --- direction-optimizing crossover -------------------------------------

TEST(BfsEngineCrossover, DenseSweepTakesBottomUpSteps) {
  obs::Counter& steps = obs::Stats::GetCounter("graph.bfs_bottomup_steps");
  graph::Rng rng(101);
  const Graph dense = gen::ErdosRenyi(300, 0.5, rng);
  const std::uint64_t before = steps.value();
  BfsDistances(dense, 0);
  EXPECT_GT(steps.value(), before)
      << "cost model never flipped to bottom-up on a dense graph";
}

TEST(BfsEngineCrossover, SparsePathStaysTopDown) {
  obs::Counter& steps = obs::Stats::GetCounter("graph.bfs_bottomup_steps");
  const Graph path = gen::Linear(4096);
  const std::uint64_t before = steps.value();
  BfsDistances(path, 0);
  EXPECT_EQ(steps.value(), before)
      << "bottom-up can never win on single-node frontiers";
}

TEST(BfsEngineCrossover, ExactOrderKernelsNeverGoBottomUp) {
  obs::Counter& steps = obs::Stats::GetCounter("graph.bfs_bottomup_steps");
  graph::Rng rng(101);
  const Graph dense = gen::ErdosRenyi(300, 0.5, rng);
  const std::uint64_t before = steps.value();
  Ball(dense, 0, kUnreachable);
  BuildShortestPathDag(dense, 0);
  EXPECT_EQ(steps.value(), before)
      << "order-sensitive kernels must stay pure top-down";
}

// --- zero-allocation steady state ---------------------------------------

TEST(BfsEngineAllocation, SteadyStateIsAllocationFree) {
  obs::Counter& allocs = obs::Stats::GetCounter("graph.bfs_alloc");
  graph::Rng rng(105);
  gen::PlrgParams p;
  p.n = 2000;
  const Graph g = gen::Plrg(p, rng);
  // Warm this thread's pooled workspace to the graph's size.
  BfsDistances(g, 0);
  Eccentricity(g, 0);
  const std::uint64_t before = allocs.value();
  for (NodeId src = 0; src < 64; ++src) {
    BfsDistances(g, src % g.num_nodes());
    Ball(g, src % g.num_nodes(), 2);
    ReachableCounts(g, src % g.num_nodes());
  }
  EXPECT_EQ(allocs.value(), before)
      << "warm workspace grew during steady-state sweeps";
}

TEST(BfsEngineAllocation, ParallelLanesStayWarmAcrossRegions) {
  parallel::Pool::SetThreadCountForTesting(4);
  obs::Counter& allocs = obs::Stats::GetCounter("graph.bfs_alloc");
  graph::Rng rng(106);
  gen::PlrgParams p;
  p.n = 1500;
  const Graph g = gen::Plrg(p, rng);
  auto sweep_all = [&] {
    parallel::ChunkPlan plan = parallel::PlanChunks(64, 8, 8);
    parallel::ParallelFor(plan, [&](std::size_t, std::size_t first,
                                    std::size_t last) {
      BfsScratchLease scratch = AcquireBfsScratch();
      for (std::size_t i = first; i < last; ++i) {
        BfsDistancesInto(g, static_cast<NodeId>(i % g.num_nodes()),
                         *scratch);
      }
    });
  };
  // Chunks may land on any lane in any order, so no single region is
  // guaranteed to touch every lane. The pooling invariant is that total
  // growth across MANY regions is bounded by the lane count -- each of
  // the 4 lanes grows its pooled workspace at most once, ever -- rather
  // than scaling with regions x chunks as per-call allocation would
  // (20 regions x 8 chunks = 160 allocations here without the pool).
  const std::uint64_t before = allocs.value();
  for (int region = 0; region < 20; ++region) sweep_all();
  EXPECT_LE(allocs.value() - before, 4u)
      << "parallel lanes re-allocated scratch in steady state";
  parallel::Pool::SetThreadCountForTesting(0);
}

TEST(BfsEngineAllocation, NestedLeasesGetDistinctWorkspaces) {
  const Graph g = gen::KaryTree(2, 6);
  BfsScratchLease outer = AcquireBfsScratch();
  BfsDistancesInto(g, 0, *outer);
  const std::size_t outer_reached = outer->reached();
  {
    BfsScratchLease inner = AcquireBfsScratch();
    ASSERT_NE(&*inner, &*outer);
    BallInto(g, 0, 1, *inner);
    EXPECT_EQ(inner->reached(), 3u);
  }
  // The outer sweep's results survive the nested kernel.
  EXPECT_EQ(outer->reached(), outer_reached);
  EXPECT_EQ(outer->dist(0), 0u);
}

TEST(BfsEngineAllocation, LeaseReturnsWorkspaceToPool) {
  {  // Ensure at least one workspace exists, then release it.
    BfsScratchLease lease = AcquireBfsScratch();
  }
  const std::size_t idle = parallel::ScratchPool<BfsScratch>::IdleCountForTesting();
  ASSERT_GE(idle, 1u);
  {
    BfsScratchLease lease = AcquireBfsScratch();
    EXPECT_EQ(parallel::ScratchPool<BfsScratch>::IdleCountForTesting(),
              idle - 1);
  }
  EXPECT_EQ(parallel::ScratchPool<BfsScratch>::IdleCountForTesting(), idle);
}

// Epoch reuse across many graphs of different sizes on one workspace:
// stale marks from earlier sweeps must never leak into later results.
TEST(BfsEngineGolden, WorkspaceReuseAcrossGraphSizes) {
  BfsScratchLease scratch = AcquireBfsScratch();
  const Graph big = gen::KaryTree(2, 7);
  const Graph small = gen::Linear(5);
  for (int round = 0; round < 3; ++round) {
    BfsDistancesInto(big, 0, *scratch);
    EXPECT_EQ(scratch->reached(), big.num_nodes());
    BfsDistancesInto(small, 4, *scratch);
    EXPECT_EQ(scratch->reached(), 5u);
    for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(scratch->dist(v), 4u - v);
  }
}

}  // namespace
}  // namespace topogen::graph
