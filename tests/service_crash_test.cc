// topogend crash audit (docs/SERVICE.md, docs/ROBUSTNESS.md): arm the
// svc.respond fail point with kind=abort so the daemon _Exits mid-request
// -- after computing, before the response write -- then audit the crash:
//
//   - the daemon dies with the injected-crash exit code (113), and
//   - the JSONL event log, flushed line by line, contains the request's
//     admit record but no done record, so an operator replaying the log
//     can see exactly which request was in flight.
//
// Usage: service_crash_test <topogend-path> <scratch-dir>. Skips itself
// when fault points are compiled out.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "fault/fault.h"
#include "obs/json.h"

namespace fs = std::filesystem;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

// Spawns topogend with stdout piped back (for the listening-port line).
pid_t SpawnDaemon(const std::string& binary, const fs::path& events,
                  int out_pipe[2]) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  dup2(out_pipe[1], STDOUT_FILENO);
  close(out_pipe[0]);
  close(out_pipe[1]);
  setenv("TOPOGEN_SERVICE_PORT", "0", 1);
  setenv("TOPOGEN_EVENTS", events.string().c_str(), 1);
  setenv("TOPOGEN_FAULTS", "svc.respond@kind=abort", 1);
  execl(binary.c_str(), binary.c_str(), static_cast<char*>(nullptr));
  std::perror("execl");
  _exit(127);
}

// Reads the startup line "topogend: listening on 127.0.0.1:<port>".
int ReadPort(int fd) {
  std::string line;
  char c = 0;
  while (read(fd, &c, 1) == 1 && c != '\n') line += c;
  const std::size_t colon = line.rfind(':');
  if (colon == std::string::npos) return -1;
  return std::atoi(line.c_str() + colon + 1);
}

int ConnectTo(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <topogend> <scratch-dir>\n", argv[0]);
    return 2;
  }
  if (!topogen::fault::CompiledIn()) {
    std::printf("service crash test skipped: fault points compiled out\n");
    return 0;
  }
  const std::string binary = argv[1];
  const fs::path root = argv[2];
  fs::remove_all(root);
  fs::create_directories(root);
  const fs::path events = root / "events.jsonl";

  int out_pipe[2];
  if (pipe(out_pipe) != 0) return 2;
  const pid_t pid = SpawnDaemon(binary, events, out_pipe);
  Check(pid > 0, "fork should succeed");
  close(out_pipe[1]);
  const int port = ReadPort(out_pipe[0]);
  Check(port > 0, "daemon should print its listening port");

  const int fd = ConnectTo(port);
  Check(fd >= 0, "client should connect");
  const std::string request =
      "{\"id\":\"doomed\",\"topology\":\"Tree\",\"metrics\":[\"signature\"],"
      "\"scale\":\"small\",\"as_nodes\":100}\n";
  Check(write(fd, request.data(), request.size()) ==
            static_cast<ssize_t>(request.size()),
        "request write should succeed");

  // The daemon computes Tree's metrics, hits svc.respond, and _Exits.
  int status = 0;
  Check(waitpid(pid, &status, 0) == pid, "waitpid should reap the daemon");
  Check(WIFEXITED(status) &&
            WEXITSTATUS(status) == topogen::fault::kCrashExitCode,
        "daemon should die with the injected-crash exit code, got " +
            std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1));
  if (fd >= 0) close(fd);
  close(out_pipe[0]);

  // Audit: every line still parses (per-line flush means no torn tail is
  // visible to a reader opening the file after the crash), the doomed
  // request's admit record is present, and no done record follows it.
  std::ifstream log(events);
  Check(log.good(), "events.jsonl should exist after the crash");
  bool saw_admit = false;
  bool saw_done = false;
  std::string line;
  while (std::getline(log, line)) {
    if (line.empty()) continue;
    const auto doc = topogen::obs::Json::Parse(line);
    Check(doc.has_value(), "event line should parse: " + line);
    if (!doc.has_value()) continue;
    const topogen::obs::Json* type = doc->Find("type");
    if (type == nullptr || type->AsString() != "request") continue;
    const topogen::obs::Json* op = doc->Find("op");
    const topogen::obs::Json* id = doc->Find("id");
    if (op == nullptr || id == nullptr || id->AsString() != "doomed") continue;
    if (op->AsString() == "admit") saw_admit = true;
    if (op->AsString() == "done") saw_done = true;
  }
  Check(saw_admit, "the doomed request's admit event must be in the log");
  Check(!saw_done, "no done event may exist for the doomed request");

  if (g_failures == 0) {
    std::printf("service crash audit OK\n");
    return 0;
  }
  return 1;
}
