#include "hierarchy/link_value.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/canonical.h"
#include "gen/plrg.h"
#include "graph/rng.h"
#include "policy/relationships.h"

namespace topogen::hierarchy {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

double ValueOf(const LinkValueResult& r, const Graph& g, NodeId u, NodeId v) {
  const graph::EdgeId e = g.edge_id(u, v);
  EXPECT_NE(e, graph::kInvalidEdge);
  return r.value[e];
}

TEST(LinkValueTest, AccessLinkIsOne) {
  // Star + extra structure: leaf links must have value exactly 1 (paper:
  // "access links have a vertex cover of 1").
  //     2 - 0 - 1 - 3
  //         \  |
  //          \ |
  //            4   (0-4, 1-4: a cycle so interior links carry less than
  //                 everything)
  const Graph g =
      Graph::FromEdges(5, {{0, 1}, {0, 2}, {1, 3}, {0, 4}, {1, 4}});
  const LinkValueResult r = ComputeLinkValues(g);
  EXPECT_NEAR(ValueOf(r, g, 0, 2), 1.0, 1e-9);
  EXPECT_NEAR(ValueOf(r, g, 1, 3), 1.0, 1e-9);
}

TEST(LinkValueTest, PathMiddleLinkCoversSmallSide) {
  // Path 0-1-2-3-4-5: link (2,3) has sides {0,1,2} and {3,4,5}; every node
  // uses it with weight 1 -> value = min(3, 3) = 3.
  const Graph g = gen::Linear(6);
  const LinkValueResult r = ComputeLinkValues(g);
  EXPECT_NEAR(ValueOf(r, g, 2, 3), 3.0, 1e-9);
  EXPECT_NEAR(ValueOf(r, g, 0, 1), 1.0, 1e-9);
  EXPECT_NEAR(ValueOf(r, g, 1, 2), 2.0, 1e-9);
}

TEST(LinkValueTest, BalancedTreeRootLinks) {
  // Complete binary tree, depth 3 (15 nodes): each root link separates 7
  // nodes from 8 -> value 7.
  const Graph g = gen::KaryTree(2, 3);
  const LinkValueResult r = ComputeLinkValues(g);
  EXPECT_NEAR(ValueOf(r, g, 0, 1), 7.0, 1e-9);
  EXPECT_NEAR(ValueOf(r, g, 0, 2), 7.0, 1e-9);
  // Leaf links stay at 1.
  EXPECT_NEAR(ValueOf(r, g, 3, 7), 1.0, 1e-9);
}

TEST(LinkValueTest, EqualCostMultipathSplitsWeight) {
  // 4-cycle: every pair has alternatives; opposite-corner traffic splits
  // 50/50, so no link carries full weight for those pairs. Each link's
  // side masses: for link (0,1): sources 0 (one full pair 0->1... compute
  // loosely: values must be well below the path case and equal by
  // symmetry.
  const Graph g = gen::Ring(4);
  const LinkValueResult r = ComputeLinkValues(g);
  const double v0 = ValueOf(r, g, 0, 1);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_NEAR(r.value[g.edge_id(e.u, e.v)], v0, 1e-9);
  }
  EXPECT_LT(v0, 2.0);
  EXPECT_GT(v0, 0.5);
}

TEST(LinkValueTest, CompleteGraphIsFlat) {
  const Graph g = gen::Complete(8);
  const LinkValueResult r = ComputeLinkValues(g);
  const double lo = *std::min_element(r.value.begin(), r.value.end());
  const double hi = *std::max_element(r.value.begin(), r.value.end());
  EXPECT_NEAR(lo, hi, 1e-9);
  // Each link mostly carries only its endpoint pair.
  EXPECT_LT(hi, 2.0);
}

TEST(LinkValueTest, SampledApproximatesExact) {
  Rng rng(1);
  const Graph g = gen::ErdosRenyi(300, 0.02, rng);
  const LinkValueResult exact = ComputeLinkValues(g);
  const LinkValueResult sampled =
      ComputeLinkValues(g, {.max_sources = 150, .seed = 2});
  // Compare rank correlation loosely: top-decile sets overlap.
  ASSERT_EQ(exact.value.size(), sampled.value.size());
  double exact_mean = 0, sampled_mean = 0;
  for (std::size_t e = 0; e < exact.value.size(); ++e) {
    exact_mean += exact.value[e];
    sampled_mean += sampled.value[e];
  }
  EXPECT_NEAR(sampled_mean / exact_mean, 1.0, 0.25);
}

TEST(RankDistributionTest, NormalizedAndSorted) {
  const Graph g = gen::KaryTree(2, 4);
  const LinkValueResult r = ComputeLinkValues(g);
  const metrics::Series s = r.RankDistribution();
  ASSERT_EQ(s.size(), g.num_edges());
  EXPECT_NEAR(s.x.back(), 1.0, 1e-9);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LE(s.y[i], s.y[i - 1] + 1e-12);  // descending values
  }
  // Top value of a balanced tree is ~0.5 N / N.
  EXPECT_GT(s.y[0], 0.3);
}

TEST(DegreeCorrelationTest, PlrgBeatsTree) {
  // Section 5.2: the Tree has the LOWEST correlation, PLRG the highest.
  // Raw link values span orders of magnitude, so Pearson compresses; the
  // rank correlation carries the paper's monotone claim cleanly.
  Rng rng(3);
  const Graph tree = gen::KaryTree(3, 6);
  const LinkValueResult rt = ComputeLinkValues(tree);
  gen::PlrgParams p;
  p.n = 1500;
  const Graph plrg = gen::Plrg(p, rng);
  const LinkValueResult rp = ComputeLinkValues(plrg);
  EXPECT_GT(rp.DegreeCorrelation(plrg), rt.DegreeCorrelation(tree));
  // The rank correlation confirms the monotone mechanism for PLRG. (It is
  // NOT a tree discriminator: a tree's leaf-vs-internal split is itself
  // rank-monotone, which is exactly why the paper uses raw Pearson.)
  EXPECT_GT(rp.DegreeRankCorrelation(plrg), 0.5);
}

TEST(DegreeCorrelationTest, ValueGrowsMonotonicallyWithDegree) {
  // The mechanism behind Figure 5: mean link value per min-degree bucket
  // increases -- hub-hub links are the backbone.
  Rng rng(13);
  gen::PlrgParams p;
  p.n = 2500;
  const Graph g = gen::Plrg(p, rng);
  const LinkValueResult r = ComputeLinkValues(g);
  double low_sum = 0, high_sum = 0;
  std::size_t low_n = 0, high_n = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge& ed = g.edges()[e];
    const std::size_t md = std::min(g.degree(ed.u), g.degree(ed.v));
    if (md <= 2) {
      low_sum += r.value[e];
      ++low_n;
    } else if (md >= 8) {
      high_sum += r.value[e];
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 0u);
  ASSERT_GT(high_n, 0u);
  EXPECT_GT(high_sum / high_n, 2.0 * low_sum / low_n);
}

TEST(HierarchyClassTest, TreeIsStrict) {
  const Graph g = gen::KaryTree(3, 5);
  const LinkValueResult r = ComputeLinkValues(g);
  EXPECT_EQ(ClassifyHierarchy(r), HierarchyClass::kStrict);
}

TEST(HierarchyClassTest, MeshIsLoose) {
  const Graph g = gen::Mesh(14, 14);
  const LinkValueResult r = ComputeLinkValues(g);
  EXPECT_EQ(ClassifyHierarchy(r), HierarchyClass::kLoose);
}

TEST(HierarchyClassTest, PlrgIsModerate) {
  Rng rng(4);
  gen::PlrgParams p;
  p.n = 2000;
  const Graph g = gen::Plrg(p, rng);
  const LinkValueResult r = ComputeLinkValues(g);
  EXPECT_EQ(ClassifyHierarchy(r), HierarchyClass::kModerate);
}

TEST(PolicyLinkValueTest, AllSiblingMatchesPlain) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(200, 0.025, rng);
  const std::vector<policy::Relationship> rel(
      g.num_edges(), policy::Relationship::kSiblingSibling);
  const LinkValueResult plain = ComputeLinkValues(g);
  const LinkValueResult pol = ComputePolicyLinkValues(g, rel);
  ASSERT_EQ(plain.value.size(), pol.value.size());
  for (std::size_t e = 0; e < plain.value.size(); ++e) {
    EXPECT_NEAR(plain.value[e], pol.value[e], 1e-6) << "edge " << e;
  }
}

TEST(PolicyLinkValueTest, PolicyConcentratesTopValues) {
  // Figure 4(b): with policy routing paths concentrate, raising the
  // highest link values. Hierarchy with a shortcut: two mid-tier
  // providers under one top provider, each with leaves, plus a peer
  // shortcut between two leaves. Plain routing spreads cross-traffic over
  // the shortcut; policy forbids leaf transit, forcing it through the top.
  //
  //        T0
  //       /  .
  //      M1    M2
  //     /|      |.
  //    L3 L4   L5 L6     + peer link L4 -- L5
  graph::GraphBuilder b(7);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(1, 4);
  b.AddEdge(2, 5);
  b.AddEdge(2, 6);
  b.AddEdge(4, 5);
  const Graph g = std::move(b).Build();
  std::vector<policy::Relationship> rel(
      g.num_edges(), policy::Relationship::kProviderCustomer);
  rel[g.edge_id(4, 5)] = policy::Relationship::kPeerPeer;
  const LinkValueResult plain = ComputeLinkValues(g);
  const LinkValueResult pol = ComputePolicyLinkValues(g, rel);
  // Under shortest paths the L4-L5 peer shortcut carries cross-subtree
  // traffic; under valley-free routing it serves only the peers
  // themselves (no transit through a peer link), so its value collapses
  // to an access-link-like 1 while the top links keep theirs.
  EXPECT_LT(pol.value[g.edge_id(4, 5)], plain.value[g.edge_id(4, 5)]);
  EXPECT_NEAR(pol.value[g.edge_id(4, 5)], 1.0, 1e-9);
  EXPECT_GE(pol.value[g.edge_id(0, 1)], plain.value[g.edge_id(0, 1)] - 1e-9);
}

}  // namespace
}  // namespace topogen::hierarchy
