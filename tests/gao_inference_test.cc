#include "policy/gao_inference.h"

#include <gtest/gtest.h>

#include "gen/measured.h"
#include "policy/paths.h"

namespace topogen::policy {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

// Simulated BGP table: valley-free paths from a few vantage points to
// every destination, extracted from the ground-truth annotation.
std::vector<std::vector<NodeId>> SimulatedPaths(
    const Graph& g, std::span<const Relationship> rel,
    std::span<const NodeId> vantage_points) {
  std::vector<std::vector<NodeId>> paths;
  for (const NodeId vp : vantage_points) {
    for (NodeId dst = 0; dst < g.num_nodes(); ++dst) {
      if (dst == vp) continue;
      std::vector<NodeId> p = ExtractPolicyPath(g, rel, vp, dst);
      if (p.size() >= 2) paths.push_back(std::move(p));
    }
  }
  return paths;
}

TEST(ExtractPolicyPathTest, PathIsValleyFree) {
  Rng rng(1);
  gen::MeasuredAsParams params;
  params.n = 400;
  const gen::AsTopology as = gen::MeasuredAs(params, rng);
  const Graph& g = as.graph;
  for (NodeId dst = 1; dst < 60; ++dst) {
    const std::vector<NodeId> p =
        ExtractPolicyPath(g, as.relationship, 0, dst);
    if (p.empty()) continue;
    ASSERT_EQ(p.front(), 0u);
    ASSERT_EQ(p.back(), dst);
    // Replay the automaton along the path.
    unsigned phase = kPhaseUp;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      const graph::EdgeId e = g.edge_id(p[i], p[i + 1]);
      ASSERT_NE(e, graph::kInvalidEdge);
      const Traversal t = TraversalFrom(g, as.relationship, e, p[i]);
      unsigned next;
      ASSERT_TRUE(PolicyStep(phase, t, next))
          << "valley at hop " << i << " of path to " << dst;
      phase = next;
    }
  }
}

TEST(ExtractPolicyPathTest, LengthMatchesPolicyDistance) {
  Rng rng(2);
  gen::MeasuredAsParams params;
  params.n = 300;
  const gen::AsTopology as = gen::MeasuredAs(params, rng);
  const auto dist = PolicyDistances(as.graph, as.relationship, 5);
  for (NodeId dst = 0; dst < as.graph.num_nodes(); dst += 11) {
    const auto p = ExtractPolicyPath(as.graph, as.relationship, 5, dst);
    if (dist[dst] == graph::kUnreachable) {
      EXPECT_TRUE(p.empty());
    } else if (dst != 5) {
      ASSERT_FALSE(p.empty());
      EXPECT_EQ(p.size(), dist[dst] + 1);
    }
  }
}

TEST(ExtractPolicyPathTest, TrivialCases) {
  Rng rng(3);
  gen::MeasuredAsParams params;
  params.n = 100;
  const gen::AsTopology as = gen::MeasuredAs(params, rng);
  EXPECT_EQ(ExtractPolicyPath(as.graph, as.relationship, 4, 4),
            std::vector<NodeId>{4});
}

TEST(GaoInferenceTest, HighAccuracyOnSyntheticAs) {
  Rng rng(4);
  gen::MeasuredAsParams params;
  params.n = 500;
  const gen::AsTopology as = gen::MeasuredAs(params, rng);
  // A dozen vantage points, like a small route-views collector set.
  std::vector<NodeId> vps;
  for (NodeId v = 0; v < as.graph.num_nodes(); v += 17) vps.push_back(v);
  const auto paths = SimulatedPaths(as.graph, as.relationship, vps);
  ASSERT_GT(paths.size(), 1000u);
  const auto inferred = InferRelationshipsFromPaths(as.graph, paths);
  const double agreement =
      RelationshipAgreement(as.relationship, inferred);
  // Gao reports >90% on real data; our cleaner synthetic truth does better.
  EXPECT_GT(agreement, 0.90) << "agreement " << agreement;
}

TEST(GaoInferenceTest, ProviderCustomerOrientationOnStar) {
  // Hub with 6 leaves; paths leaf -> hub -> leaf. The hub must come out
  // as everyone's provider.
  graph::GraphBuilder b(7);
  for (NodeId i = 1; i < 7; ++i) b.AddEdge(0, i);
  const Graph g = std::move(b).Build();
  std::vector<std::vector<NodeId>> paths;
  for (NodeId i = 1; i < 7; ++i) {
    for (NodeId j = 1; j < 7; ++j) {
      if (i != j) paths.push_back({i, 0, j});
    }
  }
  const auto rel = InferRelationshipsFromPaths(g, paths);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    // Canonical edges are (0, leaf) with u = 0 the hub.
    EXPECT_EQ(rel[e], Relationship::kProviderCustomer);
  }
}

TEST(GaoInferenceTest, PeerLinkDetectedAtApex) {
  // Two providers P0, P1 with customers, peering with each other:
  //   P0 -peer- P1;  C2,C3 under P0;  C4,C5 under P1.
  // Paths cross the peering only at the apex, interior to the path.
  const Graph g = Graph::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {1, 5}});
  std::vector<std::vector<NodeId>> paths;
  for (NodeId c0 : {NodeId{2}, NodeId{3}}) {
    for (NodeId c1 : {NodeId{4}, NodeId{5}}) {
      paths.push_back({c0, 0, 1, c1});
      paths.push_back({c1, 1, 0, c0});
    }
  }
  // Also intra-provider paths so customer edges see transit use.
  paths.push_back({2, 0, 3});
  paths.push_back({4, 1, 5});
  const auto rel = InferRelationshipsFromPaths(g, paths);
  EXPECT_EQ(rel[g.edge_id(0, 1)], Relationship::kPeerPeer);
  EXPECT_EQ(rel[g.edge_id(0, 2)], Relationship::kProviderCustomer);
  EXPECT_EQ(rel[g.edge_id(1, 4)], Relationship::kProviderCustomer);
}

TEST(GaoInferenceTest, SiblingWhenTransitIsMutual) {
  // Siblings S1(1), S2(2) provide *mutual transit* below a common
  // provider H(0): traffic climbs through the S1-S2 link in both
  // directions on its way to H. That mixed-direction, non-apex usage is
  // Gao's sibling signature. (H gets extra customers 5-7 so it is the
  // clear degree apex of every path.)
  //
  //        H(0)---5,6,7
  //       /   .
  //     S1 --- S2
  //      |      |
  //     C3     C4
  const Graph g = Graph::FromEdges(8, {{0, 1},
                                       {0, 2},
                                       {1, 2},
                                       {1, 3},
                                       {2, 4},
                                       {0, 5},
                                       {0, 6},
                                       {0, 7}});
  std::vector<std::vector<NodeId>> paths;
  for (int rep = 0; rep < 4; ++rep) {
    // C4 climbs S2 -> S1 -> H (S1 provides for S2)...
    paths.push_back({4, 2, 1, 0, 5});
    // ...and C3 climbs S1 -> S2 -> H (S2 provides for S1).
    paths.push_back({3, 1, 2, 0, 6});
  }
  const auto rel = InferRelationshipsFromPaths(g, paths);
  EXPECT_EQ(rel[g.edge_id(1, 2)], Relationship::kSiblingSibling);
}

TEST(RelationshipAgreementTest, Basics) {
  using R = Relationship;
  const std::vector<R> truth{R::kPeerPeer, R::kProviderCustomer};
  const std::vector<R> same = truth;
  const std::vector<R> flipped{R::kPeerPeer, R::kCustomerProvider};
  EXPECT_DOUBLE_EQ(RelationshipAgreement(truth, same), 1.0);
  EXPECT_DOUBLE_EQ(RelationshipAgreement(truth, flipped), 0.5);
  EXPECT_DOUBLE_EQ(RelationshipAgreement({}, {}), 0.0);
}

}  // namespace
}  // namespace topogen::policy
