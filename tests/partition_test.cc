#include "graph/partition.h"

#include <gtest/gtest.h>

#include "gen/canonical.h"
#include "graph/rng.h"

namespace topogen::graph {
namespace {

std::uint64_t Cut(const Graph& g, std::uint64_t seed = 1) {
  Rng rng(seed);
  return BalancedMinCut(g, rng);
}

// Verifies the reported cut matches the returned sides and that balance
// holds.
void CheckConsistent(const Graph& g, const BisectionResult& r,
                     double min_fraction = 1.0 / 3.0) {
  std::uint64_t cut = 0;
  for (const Edge& e : g.edges()) {
    if (r.side[e.u] != r.side[e.v]) ++cut;
  }
  EXPECT_EQ(cut, r.cut);
  std::size_t side1 = 0;
  for (auto s : r.side) side1 += s;
  const auto n = static_cast<double>(g.num_nodes());
  EXPECT_GE(side1, static_cast<std::size_t>(min_fraction * n) - 1);
  EXPECT_GE(g.num_nodes() - side1,
            static_cast<std::size_t>(min_fraction * n) - 1);
}

TEST(PartitionTest, TinyGraphs) {
  Rng rng(1);
  EXPECT_EQ(BalancedMinCut(Graph{}, rng), 0u);
  EXPECT_EQ(BalancedMinCut(Graph::FromEdges(1, {}), rng), 0u);
  EXPECT_EQ(BalancedMinCut(Graph::FromEdges(2, {{0, 1}}), rng), 1u);
}

TEST(PartitionTest, PathHasCutOne) {
  EXPECT_EQ(Cut(gen::Linear(64)), 1u);
}

TEST(PartitionTest, CycleHasCutTwo) {
  EXPECT_EQ(Cut(gen::Ring(64)), 2u);
}

TEST(PartitionTest, BalancedTreeHasSmallCut) {
  // A complete binary tree of depth 7 (255 nodes) has a subtree holding
  // 127/255 of the weight: cut 1 is reachable under the 1/3 balance rule.
  EXPECT_LE(Cut(gen::KaryTree(2, 7)), 2u);
}

TEST(PartitionTest, TernaryTreeHasSmallCut) {
  EXPECT_LE(Cut(gen::KaryTree(3, 5)), 3u);
}

TEST(PartitionTest, MeshCutIsAboutSideLength) {
  // A k x k grid's balanced min cut is ~k (a straight slice).
  const std::uint64_t cut = Cut(gen::Mesh(16, 16));
  EXPECT_GE(cut, 14u);
  EXPECT_LE(cut, 24u);
}

TEST(PartitionTest, CompleteGraphCutIsQuadratic) {
  // Best bisection of K_12 under the 1/3 rule: 4 vs 8 -> 32 cut edges.
  const std::uint64_t cut = Cut(gen::Complete(12));
  EXPECT_GE(cut, 32u);
  EXPECT_LE(cut, 36u);  // exact half split
}

TEST(PartitionTest, TwoCliquesJoinedByBridge) {
  GraphBuilder b(16);
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = i + 1; j < 8; ++j) {
      b.AddEdge(i, j);
      b.AddEdge(8 + i, 8 + j);
    }
  }
  b.AddEdge(0, 8);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(Cut(g), 1u);
}

TEST(PartitionTest, RandomGraphCutGrowsLinearly) {
  Rng rng(3);
  const Graph small = gen::ErdosRenyi(200, 0.04, rng);
  const Graph large = gen::ErdosRenyi(800, 0.01, rng);
  // Both have average degree ~8; the larger graph's bisection should cut
  // roughly 4x as many edges.
  const double ratio = static_cast<double>(Cut(large)) /
                       static_cast<double>(Cut(small));
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(PartitionTest, ResultIsInternallyConsistent) {
  Rng rng(7);
  const Graph g = gen::ErdosRenyi(300, 0.03, rng);
  Rng prng(9);
  const BisectionResult r = BalancedBisection(g, prng);
  CheckConsistent(g, r);
}

TEST(PartitionTest, MeshResultIsInternallyConsistent) {
  Rng prng(11);
  const Graph g = gen::Mesh(20, 20);
  const BisectionResult r = BalancedBisection(g, prng);
  CheckConsistent(g, r);
}

TEST(PartitionTest, DeterministicForFixedSeed) {
  const Graph g = gen::Mesh(12, 12);
  Rng a(42), b(42);
  EXPECT_EQ(BalancedMinCut(g, a), BalancedMinCut(g, b));
}

class PartitionSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionSweepTest, GridCutScalesWithSide) {
  const unsigned k = GetParam();
  const std::uint64_t cut = Cut(gen::Mesh(k, k), k);
  // A straight slice cuts exactly k edges; allow heuristic slack upward
  // and diagonal-ish cuts slightly below.
  EXPECT_GE(cut, static_cast<std::uint64_t>(k) * 8 / 10);
  EXPECT_LE(cut, static_cast<std::uint64_t>(k) * 2);
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionSweepTest,
                         ::testing::Values(8u, 12u, 16u, 24u, 32u));

}  // namespace
}  // namespace topogen::graph
