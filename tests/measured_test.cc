#include "gen/measured.h"

#include <gtest/gtest.h>

#include "graph/components.h"
#include "metrics/clustering.h"
#include "metrics/degree.h"

namespace topogen::gen {
namespace {

using graph::Graph;
using graph::Rng;

TEST(MeasuredAsTest, CalibratedToFigure1) {
  Rng rng(1);
  MeasuredAsParams p;
  p.n = 3000;
  const AsTopology as = MeasuredAs(p, rng);
  // Figure 1's AS row: average degree 4.13. Largest-component extraction
  // and triangle enrichment both nudge it, so allow a band.
  EXPECT_NEAR(as.graph.average_degree(), 4.13, 0.6);
  EXPECT_TRUE(graph::IsConnected(as.graph));
  EXPECT_TRUE(metrics::LooksHeavyTailed(as.graph));
  EXPECT_EQ(as.relationship.size(), as.graph.num_edges());
}

TEST(MeasuredAsTest, TriangleEnrichmentRaisesClustering) {
  Rng a(2), b(2);
  MeasuredAsParams plain;
  plain.n = 3000;
  plain.triangle_fraction = 0.0;
  MeasuredAsParams enriched = plain;
  enriched.triangle_fraction = 0.08;
  const double c0 = metrics::ClusteringCoefficient(MeasuredAs(plain, a).graph);
  const double c1 =
      metrics::ClusteringCoefficient(MeasuredAs(enriched, b).graph);
  EXPECT_GT(c1, c0);
}

TEST(MeasuredAsTest, RelationshipsFollowDegreeOrder) {
  Rng rng(3);
  MeasuredAsParams p;
  p.n = 2000;
  const AsTopology as = MeasuredAs(p, rng);
  for (graph::EdgeId e = 0; e < as.graph.num_edges(); ++e) {
    const graph::Edge& ed = as.graph.edges()[e];
    const auto du = as.graph.degree(ed.u);
    const auto dv = as.graph.degree(ed.v);
    switch (as.relationship[e]) {
      case policy::Relationship::kProviderCustomer:
        EXPECT_GT(du, dv);
        break;
      case policy::Relationship::kCustomerProvider:
        EXPECT_GT(dv, du);
        break;
      default:
        break;  // peers: degrees within the ratio band
    }
  }
}

TEST(MeasuredRlTest, ScaleAndShape) {
  Rng rng(4);
  MeasuredRlParams p;
  p.as_params.n = 800;
  p.expansion_ratio = 6.0;
  const RlTopology rl = MeasuredRl(p, rng);
  const auto num_as = rl.as_topology.graph.num_nodes();
  // Router count tracks the expansion ratio.
  EXPECT_NEAR(static_cast<double>(rl.graph.num_nodes()),
              6.0 * static_cast<double>(num_as),
              0.3 * 6.0 * static_cast<double>(num_as));
  // Figure 1's RL row: average degree 2.53.
  EXPECT_NEAR(rl.graph.average_degree(), 2.53, 0.5);
  EXPECT_TRUE(graph::IsConnected(rl.graph));
}

TEST(MeasuredRlTest, OverlayMappingIsConsistent) {
  Rng rng(5);
  MeasuredRlParams p;
  p.as_params.n = 500;
  const RlTopology rl = MeasuredRl(p, rng);
  ASSERT_EQ(rl.as_of.size(), rl.graph.num_nodes());
  const auto num_as = rl.as_topology.graph.num_nodes();
  std::vector<bool> seen(num_as, false);
  for (auto a : rl.as_of) {
    ASSERT_LT(a, num_as);
    seen[a] = true;
  }
  // Every AS owns at least one router.
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(MeasuredRlTest, InterAsLinksMatchAsAdjacency) {
  Rng rng(6);
  MeasuredRlParams p;
  p.as_params.n = 400;
  const RlTopology rl = MeasuredRl(p, rng);
  for (const graph::Edge& e : rl.graph.edges()) {
    const auto au = rl.as_of[e.u];
    const auto av = rl.as_of[e.v];
    if (au != av) {
      EXPECT_TRUE(rl.as_topology.graph.has_edge(au, av))
          << "border link between non-adjacent ASes";
    }
  }
}

TEST(MeasuredRlTest, ManyAccessRouters) {
  Rng rng(7);
  MeasuredRlParams p;
  p.as_params.n = 600;
  const RlTopology rl = MeasuredRl(p, rng);
  // The RL graph's avg degree 2.53 comes from a large degree-1 population.
  EXPECT_GT(rl.graph.count_degree(1),
            rl.graph.num_nodes() / 3);
}

}  // namespace
}  // namespace topogen::gen
