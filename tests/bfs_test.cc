#include "graph/bfs.h"

#include <gtest/gtest.h>

#include "bfs_testutil.h"
#include "gen/canonical.h"
#include "graph/rng.h"

namespace topogen::graph {
namespace {

using testutil::BfsDistances;
using testutil::Ball;
using testutil::BuildShortestPathDag;
using testutil::ReachableCounts;
using testutil::ShortestPathDag;

Graph PathGraph(NodeId n) { return gen::Linear(n); }

TEST(BfsTest, DistancesOnPath) {
  const Graph g = PathGraph(5);
  const std::vector<Dist> d = BfsDistances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsTest, DistancesRespectMaxDepth) {
  const Graph g = PathGraph(10);
  const std::vector<Dist> d = BfsDistances(g, 0, 3);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[4], kUnreachable);
}

TEST(BfsTest, UnreachableAcrossComponents) {
  const Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  const std::vector<Dist> d = BfsDistances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(BallTest, RadiusZeroIsCenterOnly) {
  const Graph g = PathGraph(5);
  EXPECT_EQ(Ball(g, 2, 0).size(), 1u);
}

TEST(BallTest, GrowsSymmetricallyOnPath) {
  const Graph g = PathGraph(9);
  const auto ball = Ball(g, 4, 2);
  EXPECT_EQ(ball.size(), 5u);  // 2,3,4,5,6
}

TEST(BallTest, SaturatesAtComponent) {
  const Graph g = PathGraph(5);
  EXPECT_EQ(Ball(g, 0, 100).size(), 5u);
}

TEST(ReachableCountsTest, PathCounts) {
  const Graph g = PathGraph(5);
  const auto counts = ReachableCounts(g, 0);
  ASSERT_EQ(counts.size(), 5u);
  for (std::size_t h = 0; h < 5; ++h) EXPECT_EQ(counts[h], h + 1);
}

TEST(ReachableCountsTest, TreeGrowsExponentially) {
  const Graph g = gen::KaryTree(2, 6);  // 127 nodes
  const auto counts = ReachableCounts(g, 0);
  // From the root: 1, 3, 7, 15, ... (1 + 2 + 4 + ...).
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 7u);
  EXPECT_EQ(counts[6], 127u);
}

TEST(ShortestPathDagTest, SigmaCountsParallelRoutes) {
  // 4-cycle: two shortest paths from 0 to 2.
  const Graph g = gen::Ring(4);
  const ShortestPathDag dag = BuildShortestPathDag(g, 0);
  EXPECT_DOUBLE_EQ(dag.sigma[0], 1.0);
  EXPECT_DOUBLE_EQ(dag.sigma[1], 1.0);
  EXPECT_DOUBLE_EQ(dag.sigma[3], 1.0);
  EXPECT_DOUBLE_EQ(dag.sigma[2], 2.0);
}

TEST(ShortestPathDagTest, OrderIsByDistance) {
  const Graph g = gen::KaryTree(2, 4);
  const ShortestPathDag dag = BuildShortestPathDag(g, 0);
  for (std::size_t i = 1; i < dag.order.size(); ++i) {
    EXPECT_LE(dag.dist[dag.order[i - 1]], dag.dist[dag.order[i]]);
  }
}

TEST(ShortestPathDagTest, GridSigmaIsBinomial) {
  // On a grid, the number of shortest paths to the diagonal (r, r) node is
  // binomial(2r, r).
  const Graph g = gen::Mesh(4, 4);
  const ShortestPathDag dag = BuildShortestPathDag(g, 0);
  EXPECT_DOUBLE_EQ(dag.sigma[1 * 4 + 1], 2.0);   // (1,1): 2 paths
  EXPECT_DOUBLE_EQ(dag.sigma[2 * 4 + 2], 6.0);   // (2,2): C(4,2)
  EXPECT_DOUBLE_EQ(dag.sigma[3 * 4 + 3], 20.0);  // (3,3): C(6,3)
}

TEST(EccentricityTest, PathEndpointsAndCenter) {
  const Graph g = PathGraph(9);
  EXPECT_EQ(Eccentricity(g, 0), 8u);
  EXPECT_EQ(Eccentricity(g, 4), 4u);
}

TEST(EccentricityTest, IsolatedNodeIsZero) {
  const Graph g = Graph::FromEdges(3, {{0, 1}});
  EXPECT_EQ(Eccentricity(g, 2), 0u);
}

TEST(AveragePathLengthTest, PathGraphExact) {
  // Average pairwise distance on a path of n nodes is (n+1)/3.
  const Graph g = PathGraph(7);
  EXPECT_NEAR(AveragePathLength(g, 1000), 8.0 / 3.0, 1e-9);
}

TEST(AveragePathLengthTest, CompleteGraphIsOne) {
  const Graph g = gen::Complete(8);
  EXPECT_DOUBLE_EQ(AveragePathLength(g, 1000), 1.0);
}

TEST(AveragePathLengthTest, SampledApproximatesExact) {
  Rng rng(5);
  const Graph g = gen::ErdosRenyi(400, 0.02, rng);
  const double exact = AveragePathLength(g, g.num_nodes());
  const double sampled = AveragePathLength(g, 64);
  EXPECT_NEAR(sampled, exact, 0.25);
}

}  // namespace
}  // namespace topogen::graph
