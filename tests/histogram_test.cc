// Tests for the lock-free log-bucketed histogram (src/obs/histogram.h):
// bucket layout invariants, quantile exactness on the exact range,
// merge associativity (the contract that lets per-lane shards fold in
// any order), the TOPOGEN_HIST macros' disabled-is-free behavior, and --
// the property everything else rests on -- that enabling telemetry does
// not perturb the figures at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "gen/plrg.h"
#include "metrics/expansion.h"
#include "obs/histogram.h"
#include "obs/obs.h"
#include "parallel/pool.h"

namespace topogen::obs {
namespace {

// --- bucket layout ----------------------------------------------------

TEST(HistogramBucketsTest, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
}

TEST(HistogramBucketsTest, IndexIsMonotoneAndBoundsContain) {
  // A deterministic sweep across the magnitude range: powers of two and
  // their neighbors, where bucket transitions happen.
  std::vector<std::uint64_t> probes;
  for (int p = 0; p < 64; ++p) {
    const std::uint64_t base = std::uint64_t{1} << p;
    for (std::int64_t d = -2; d <= 2; ++d) {
      const std::uint64_t v = base + static_cast<std::uint64_t>(d);
      if (v >= base - 2) probes.push_back(v);  // skip underflow wraps
    }
  }
  std::sort(probes.begin(), probes.end());
  std::size_t prev_index = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t index = Histogram::BucketIndex(v);
    ASSERT_LT(index, Histogram::kNumBuckets);
    EXPECT_GE(index, prev_index) << "index not monotone at v=" << v;
    EXPECT_GE(Histogram::BucketUpperBound(index), v);
    if (index > 0) {
      // v lies strictly above the previous bucket, or the bounds overlap.
      EXPECT_GT(v, Histogram::BucketUpperBound(index - 1));
    }
    prev_index = index;
  }
}

TEST(HistogramBucketsTest, BucketsAreAtMost12Point5PercentWide) {
  for (std::size_t i = 17; i < Histogram::kNumBuckets; ++i) {
    const std::uint64_t lo = Histogram::BucketUpperBound(i - 1);
    const std::uint64_t hi = Histogram::BucketUpperBound(i);
    // Width relative to the lower edge: (hi - lo) / lo <= 1/8.
    EXPECT_LE(hi - lo, lo / 8 + 1) << "bucket " << i << " too wide";
  }
}

TEST(HistogramBucketsTest, TopBucketAbsorbsUint64Max) {
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(Histogram::BucketIndex(top), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1), top);
}

// --- recording and quantiles ------------------------------------------

TEST(HistogramTest, CountSumMinMaxAreExact) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty reports 0, not the sentinel
  h.Record(7);
  h.Record(3);
  h.Record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, QuantilesExactOnTheExactRange) {
  // Values 0..15 each once: every value has its own bucket, so the
  // quantile is the true order statistic (1-indexed ceil(q*16)-th value).
  Histogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 7u);    // 8th of 0..15
  EXPECT_EQ(h.ValueAtQuantile(0.25), 3u);   // 4th
  EXPECT_EQ(h.ValueAtQuantile(1.0), 15u);   // 16th
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);    // clamped to first value
}

TEST(HistogramTest, QuantileClampsToObservedMax) {
  Histogram h;
  h.Record(1);
  h.Record(1'000'000);
  // p99 falls in the bucket holding 1e6, whose upper bound exceeds 1e6;
  // the clamp keeps the report at the true maximum.
  EXPECT_EQ(h.ValueAtQuantile(0.99), 1'000'000u);
  EXPECT_EQ(h.Snapshot().p50, 1u);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.p99, 0u);
}

// --- merge ------------------------------------------------------------

// Deterministic value stream (64-bit LCG) spanning many octaves.
std::vector<std::uint64_t> Stream(std::uint64_t seed, std::size_t count) {
  std::vector<std::uint64_t> values;
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < count; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    values.push_back(x >> (x % 48));  // mix magnitudes
  }
  return values;
}

void RecordAll(Histogram& h, const std::vector<std::uint64_t>& values) {
  for (const std::uint64_t v : values) h.Record(v);
}

TEST(HistogramTest, MergeIsExactlyAssociative) {
  Histogram a, b, c;
  RecordAll(a, Stream(1, 500));
  RecordAll(b, Stream(2, 300));
  RecordAll(c, Stream(3, 700));

  Histogram left;   // (a + b) + c
  left.MergeFrom(a);
  left.MergeFrom(b);
  left.MergeFrom(c);
  Histogram right;  // a + (b + c), folded through a temporary
  Histogram bc;
  bc.MergeFrom(c);  // and in the opposite order
  bc.MergeFrom(b);
  right.MergeFrom(bc);
  right.MergeFrom(a);

  EXPECT_EQ(left.BucketCountsForTesting(), right.BucketCountsForTesting());
  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  EXPECT_EQ(left.ValueAtQuantile(0.99), right.ValueAtQuantile(0.99));
}

TEST(HistogramTest, MergeMatchesDirectRecording) {
  Histogram shard1, shard2, merged, direct;
  RecordAll(shard1, Stream(9, 400));
  RecordAll(shard2, Stream(10, 400));
  merged.MergeFrom(shard1);
  merged.MergeFrom(shard2);
  RecordAll(direct, Stream(9, 400));
  RecordAll(direct, Stream(10, 400));
  EXPECT_EQ(merged.BucketCountsForTesting(),
            direct.BucketCountsForTesting());
  EXPECT_EQ(merged.sum(), direct.sum());
}

// --- macros and registry ----------------------------------------------

// Env-flipping tests mirror ObsEnvTest (obs_test.cc): TearDown restores
// the all-unset default so the rest of the binary runs telemetry-off.
class HistogramEnvTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearEnv(); }
  void TearDown() override { ClearEnv(); }

  void ClearEnv() {
    ::unsetenv("TOPOGEN_HIST");
    ::unsetenv("TOPOGEN_EVENTS");
    ::unsetenv("TOPOGEN_TRACE");
    ::unsetenv("TOPOGEN_STATS");
    Env::ResetForTesting();
    Stats::ResetForTesting();
  }

  void SetEnv(const char* name, const char* value) {
    ::setenv(name, value, 1);
    Env::ResetForTesting();
  }
};

TEST_F(HistogramEnvTest, DisabledMacroRegistersNothing) {
  EXPECT_FALSE(HistEnabled());
  TOPOGEN_HIST_NS("test.disabled_ns", 42);
  { TOPOGEN_HIST_SCOPE("test.disabled_scope"); }
  EXPECT_TRUE(Stats::HistogramSnapshots().empty());
}

TEST_F(HistogramEnvTest, EnabledMacroRecordsThroughRegistry) {
  SetEnv("TOPOGEN_HIST", "1");
  ASSERT_TRUE(HistEnabled());
  TOPOGEN_HIST_NS("test.enabled_ns", 7);
  TOPOGEN_HIST_NS("test.enabled_ns", 9);
  { TOPOGEN_HIST_SCOPE("test.enabled_scope"); }
  const std::vector<HistogramSnapshot> snaps = Stats::HistogramSnapshots();
  ASSERT_EQ(snaps.size(), 2u);  // sorted registry: _ns before _scope
  EXPECT_EQ(snaps[0].name, "test.enabled_ns");
  EXPECT_EQ(snaps[0].count, 2u);
  EXPECT_EQ(snaps[0].sum, 16u);
  EXPECT_EQ(snaps[1].name, "test.enabled_scope");
  EXPECT_EQ(snaps[1].count, 1u);
}

TEST_F(HistogramEnvTest, ScopedTimerNullptrDisarms) {
  Histogram h;
  { ScopedTimer timer(&h); }
  EXPECT_EQ(h.count(), 1u);
  { ScopedTimer disarmed(nullptr); }  // must be a no-op
  EXPECT_EQ(h.count(), 1u);
}

// The load-bearing property: telemetry is an observer. With histograms
// and the event log on, every thread count computes bit-identical
// figures (the determinism contract of docs/PARALLELISM.md must survive
// the instrumentation added at the parallel seams).
TEST_F(HistogramEnvTest, TelemetryDoesNotPerturbFiguresAcrossThreadCounts) {
  SetEnv("TOPOGEN_HIST", "1");
  graph::Rng rng(5);
  gen::PlrgParams params;
  params.n = 600;
  const graph::Graph g = gen::Plrg(params, rng);

  metrics::Series reference;
  for (const int threads : {1, 2, 7}) {
    parallel::Pool::SetThreadCountForTesting(threads);
    const metrics::Series s = metrics::Expansion(g, {.max_sources = 64});
    if (threads == 1) {
      reference = s;
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(s.x, reference.x) << "threads=" << threads;
      EXPECT_EQ(s.y, reference.y) << "threads=" << threads;
    }
  }
  parallel::Pool::SetThreadCountForTesting(0);
  // The instrumentation itself recorded: one histogram cell per source.
  bool saw_source_hist = false;
  for (const HistogramSnapshot& snap : Stats::HistogramSnapshots()) {
    if (snap.name == "metrics.expansion.source_ns") {
      saw_source_hist = true;
      EXPECT_GE(snap.count, 3u * 64u);
    }
  }
  EXPECT_TRUE(saw_source_hist);
}

}  // namespace
}  // namespace topogen::obs
