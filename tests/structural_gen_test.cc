#include <gtest/gtest.h>

#include "gen/tiers.h"
#include "gen/transit_stub.h"
#include "gen/waxman.h"
#include "graph/bfs.h"
#include "graph/components.h"

namespace topogen::gen {
namespace {

using graph::Graph;
using graph::Rng;

TEST(WaxmanTest, PaperInstanceMatchesFigure1) {
  Rng rng(1);
  WaxmanParams p;  // 5000 / 0.005 / 0.30
  const Graph g = Waxman(p, rng);
  // Figure 1: 5000 nodes at average degree 7.22 (largest component).
  EXPECT_GT(g.num_nodes(), 4900u);
  EXPECT_NEAR(g.average_degree(), 7.22, 1.6);  // textbook Waxman runs denser
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(WaxmanTest, AlphaScalesDensity) {
  Rng a(2), b(2);
  WaxmanParams lo{1000, 0.005, 0.3, false};
  WaxmanParams hi{1000, 0.02, 0.3, false};
  const double dlo = Waxman(lo, a).average_degree();
  const double dhi = Waxman(hi, b).average_degree();
  EXPECT_NEAR(dhi / dlo, 4.0, 1.2);
}

TEST(WaxmanTest, ExtremeGeographicBiasFragments) {
  // Section 4.4: tiny beta kills long links and connectivity; the largest
  // component of the raw graph shrinks well below n.
  Rng rng(3);
  WaxmanParams p{3000, 0.05, 0.02, true};
  const Graph g = Waxman(p, rng);
  EXPECT_LT(g.num_nodes(), 2500u);
}

TEST(TransitStubTest, PaperInstanceHas1008Nodes) {
  Rng rng(4);
  TransitStubParams p;  // paper defaults
  const Graph g = TransitStub(p, rng);
  EXPECT_EQ(g.num_nodes(), 1008u);
  EXPECT_TRUE(graph::IsConnected(g));
  // Figure 1: average degree 2.78.
  EXPECT_NEAR(g.average_degree(), 2.78, 0.45);
}

TEST(TransitStubTest, NodeCountFormula) {
  Rng rng(5);
  TransitStubParams p;
  p.num_transit_domains = 2;
  p.nodes_per_transit_domain = 4;
  p.stubs_per_transit_node = 2;
  p.nodes_per_stub_domain = 5;
  const Graph g = TransitStub(p, rng);
  EXPECT_EQ(g.num_nodes(), 2u * 4u + 2u * 4u * 2u * 5u);  // 88
}

TEST(TransitStubTest, ExtraEdgesIncreaseDensity) {
  Rng a(6), b(6);
  TransitStubParams base;
  TransitStubParams extra = base;
  extra.extra_transit_stub_edges = 50;
  extra.extra_stub_stub_edges = 100;
  const double d0 = TransitStub(base, a).average_degree();
  const double d1 = TransitStub(extra, b).average_degree();
  EXPECT_GT(d1, d0 + 0.2);
}

TEST(TransitStubTest, StubsHangOffTransit) {
  // With no extra edges, removing the transit nodes disconnects every stub
  // domain: transit nodes are cut vertices.
  Rng rng(7);
  TransitStubParams p;
  p.extra_transit_stub_edges = 0;
  p.extra_stub_stub_edges = 0;
  const Graph g = TransitStub(p, rng);
  const std::size_t cuts = graph::CountArticulationPoints(g);
  // Every one of the 36 transit nodes sponsors 3 stubs via single edges.
  EXPECT_GE(cuts, 36u);
}

TEST(TiersTest, PaperInstanceHas5000Nodes) {
  Rng rng(8);
  TiersParams p;  // paper defaults
  const Graph g = Tiers(p, rng);
  EXPECT_EQ(g.num_nodes(), 5000u);
  EXPECT_TRUE(graph::IsConnected(g));
  // Figure 1: average degree 2.83.
  EXPECT_NEAR(g.average_degree(), 2.83, 0.3);
}

TEST(TiersTest, AppendixCRosterInstance) {
  // The 10500-node, avg-degree-2.12 row: 1 100 0 / 500 100 - / 6 6 - / 3 -.
  Rng rng(9);
  TiersParams p;
  p.mans_per_wan = 100;
  p.lans_per_man = 0;
  p.nodes_per_wan = 500;
  p.nodes_per_man = 100;
  p.wan_redundancy = 6;
  p.man_redundancy = 6;
  p.man_wan_redundancy = 3;
  const Graph g = Tiers(p, rng);
  EXPECT_EQ(g.num_nodes(), 10500u);
  EXPECT_NEAR(g.average_degree(), 2.12, 0.2);
}

TEST(TiersTest, LanNodesAreDegreeOne) {
  Rng rng(10);
  TiersParams p;
  p.mans_per_wan = 4;
  p.lans_per_man = 3;
  p.nodes_per_wan = 20;
  p.nodes_per_man = 10;
  p.nodes_per_lan = 6;
  p.wan_redundancy = 2;
  p.man_redundancy = 2;
  const Graph g = Tiers(p, rng);
  // Each LAN contributes nodes_per_lan - 1 = 5 leaves.
  EXPECT_GE(g.count_degree(1), 4u * 3u * 5u);
}

TEST(TiersTest, RedundancyAddsExactEdges) {
  Rng a(11), b(11);
  TiersParams none;
  none.mans_per_wan = 2;
  none.lans_per_man = 0;
  none.nodes_per_wan = 50;
  none.nodes_per_man = 30;
  none.wan_redundancy = 0;
  none.man_redundancy = 0;
  none.man_wan_redundancy = 1;
  TiersParams some = none;
  some.wan_redundancy = 10;
  some.man_redundancy = 5;
  const Graph g0 = Tiers(none, a);
  const Graph g1 = Tiers(some, b);
  EXPECT_EQ(g1.num_edges(), g0.num_edges() + 10u + 2u * 5u);
}

TEST(TiersTest, LowExpansionSignature) {
  // Tiers is the one generator with Mesh-like expansion (Figure 2g): its
  // WAN/MAN layers are geometric. Check the diameter is far above
  // random-graph scale.
  Rng rng(12);
  TiersParams p;
  const Graph g = Tiers(p, rng);
  EXPECT_GT(graph::Eccentricity(g, 0), 12u);
}

}  // namespace
}  // namespace topogen::gen
