// Property tests for the three basic metric series themselves (the
// classification tests check derived labels; these check the raw curves).
#include <gtest/gtest.h>

#include <cmath>

#include "gen/canonical.h"
#include "gen/plrg.h"
#include "metrics/distortion.h"
#include "metrics/expansion.h"
#include "metrics/resilience.h"

namespace topogen::metrics {
namespace {

using graph::Graph;
using graph::Rng;

BallGrowingOptions FastBalls() {
  BallGrowingOptions o;
  o.max_centers = 6;
  o.big_ball_centers = 3;
  return o;
}

class MetricPropertySweep : public ::testing::TestWithParam<int> {
 protected:
  Graph MakeGraph() const {
    switch (GetParam()) {
      case 0:
        return gen::KaryTree(3, 5);
      case 1:
        return gen::Mesh(16, 16);
      case 2: {
        Rng rng(1);
        return gen::ErdosRenyi(1200, 4.0 / 1200, rng);
      }
      default: {
        Rng rng(2);
        gen::PlrgParams p;
        p.n = 1500;
        return gen::Plrg(p, rng);
      }
    }
  }
};

TEST_P(MetricPropertySweep, ExpansionIsMonotoneAndNormalized) {
  const Graph g = MakeGraph();
  const Series e = Expansion(g, {.max_sources = 400});
  ASSERT_FALSE(e.empty());
  for (std::size_t i = 0; i < e.size(); ++i) {
    EXPECT_GT(e.y[i], 0.0);
    EXPECT_LE(e.y[i], 1.0 + 1e-12);
    if (i > 0) EXPECT_GE(e.y[i], e.y[i - 1] - 1e-12);
    EXPECT_DOUBLE_EQ(e.x[i], static_cast<double>(i + 1));
  }
  EXPECT_NEAR(e.y.back(), 1.0, 1e-9);  // connected graphs saturate
}

TEST_P(MetricPropertySweep, ResilienceSizesGrowAndCutsAreSane) {
  const Graph g = MakeGraph();
  const Series r = Resilience(g, FastBalls());
  ASSERT_FALSE(r.empty());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_GE(r.y[i], 1.0 - 1e-9);  // connected balls need >= 1 cut edge
    EXPECT_LE(r.y[i], static_cast<double>(g.num_edges()));
    if (i > 0) EXPECT_GT(r.x[i], r.x[i - 1]);  // mean ball size grows
  }
}

TEST_P(MetricPropertySweep, DistortionBoundedByBallDiameter) {
  const Graph g = MakeGraph();
  const Series d = Distortion(g, FastBalls());
  ASSERT_FALSE(d.empty());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(d.y[i], 1.0 - 1e-9);  // a spanning tree stretches >= 1
    // A ball of radius i+1 has diameter <= 2(i+1); a BFS tree from the
    // center stretches any edge at most that far.
    EXPECT_LE(d.y[i], 2.0 * static_cast<double>(i + 1) + 1e-9);
  }
}

TEST_P(MetricPropertySweep, SeriesAreDeterministic) {
  const Graph g = MakeGraph();
  const Series a = Resilience(g, FastBalls());
  const Series b = Resilience(g, FastBalls());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.y[i], b.y[i]);
  }
}

std::string SweepName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"Tree", "Mesh", "Random", "Plrg"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Topologies, MetricPropertySweep,
                         ::testing::Range(0, 4), SweepName);

TEST(ResilienceTest, TreeStaysNearOne) {
  const Series r = Resilience(gen::KaryTree(3, 5), FastBalls());
  ASSERT_FALSE(r.empty());
  for (double y : r.y) EXPECT_LE(y, 3.0);
}

TEST(DistortionTest, TreeIsExactlyOneEverywhere) {
  const Series d = Distortion(gen::KaryTree(3, 5), FastBalls());
  ASSERT_FALSE(d.empty());
  for (double y : d.y) EXPECT_DOUBLE_EQ(y, 1.0);
}

TEST(ResilienceTest, RandomOutgrowsMeshOutgrowsTree) {
  Rng rng(3);
  const Series tree = Resilience(gen::KaryTree(3, 5), FastBalls());
  const Series mesh = Resilience(gen::Mesh(16, 16), FastBalls());
  const Series random =
      Resilience(gen::ErdosRenyi(900, 8.0 / 900, rng), FastBalls());
  // Compare final values: kn >> sqrt(n) >> 1 (Section 3.2.1's scaling).
  EXPECT_GT(random.y.back(), mesh.y.back());
  EXPECT_GT(mesh.y.back(), tree.y.back());
}

}  // namespace
}  // namespace topogen::metrics
