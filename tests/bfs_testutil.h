// Materializing BFS helpers for tests and examples.
//
// The production API is kernel-shaped: *Into sweeps on a pooled
// BfsScratch, results read through the scratch accessors (graph/bfs.h).
// Tests often want plain vectors to compare against references, so these
// helpers lease a workspace, run the kernel, and copy the result out --
// exactly what the retired value-returning wrappers did, kept here so
// their allocation-per-call cost stays out of the library.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/bfs.h"
#include "graph/bfs_scratch.h"

namespace topogen::graph::testutil {

// Hop distances from src to every node; kUnreachable where disconnected
// (or beyond max_depth).
inline std::vector<Dist> BfsDistances(const Graph& g, NodeId src,
                                      Dist max_depth = kUnreachable) {
  BfsScratchLease scratch = AcquireBfsScratch();
  BfsDistancesInto(g, src, *scratch, max_depth);
  std::vector<Dist> dist(g.num_nodes(), kUnreachable);
  for (const NodeId v : scratch->order()) dist[v] = scratch->dist(v);
  return dist;
}

// Nodes within `radius` hops of center, in exact BFS discovery order
// (center first) -- the paper's "ball of radius h".
inline std::vector<NodeId> Ball(const Graph& g, NodeId center, Dist radius) {
  BfsScratchLease scratch = AcquireBfsScratch();
  BallInto(g, center, radius, *scratch);
  const std::span<const NodeId> order = scratch->order();
  return {order.begin(), order.end()};
}

// Cumulative per-radius reachable-set sizes; result[h] = nodes within h
// hops of src (result[0] == 1).
inline std::vector<std::size_t> ReachableCounts(
    const Graph& g, NodeId src, Dist max_depth = kUnreachable) {
  BfsScratchLease scratch = AcquireBfsScratch();
  std::vector<std::size_t> counts;
  ReachableCountsInto(g, src, *scratch, counts, max_depth);
  return counts;
}

// Materialized shortest-path DAG: distances, sigma path counts (double --
// they overflow 64-bit integers on expander-like graphs), and the visited
// set in exact discovery order.
struct ShortestPathDag {
  std::vector<Dist> dist;
  std::vector<double> sigma;
  std::vector<NodeId> order;
};

inline ShortestPathDag BuildShortestPathDag(const Graph& g, NodeId src) {
  BfsScratchLease scratch = AcquireBfsScratch();
  BuildShortestPathDagInto(g, src, *scratch);
  ShortestPathDag dag;
  dag.dist.assign(g.num_nodes(), kUnreachable);
  dag.sigma.assign(g.num_nodes(), 0.0);
  const std::span<const NodeId> order = scratch->order();
  dag.order.assign(order.begin(), order.end());
  for (const NodeId v : order) {
    dag.dist[v] = scratch->dist(v);
    dag.sigma[v] = scratch->sigma(v);
  }
  return dag;
}

}  // namespace topogen::graph::testutil
