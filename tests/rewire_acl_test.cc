#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gen/canonical.h"
#include "gen/degree_seq.h"
#include "gen/measured.h"
#include "graph/components.h"
#include "metrics/clustering.h"
#include "metrics/degree.h"

namespace topogen::gen {
namespace {

using graph::Graph;
using graph::NodeId;
using graph::Rng;

TEST(AclDegreeSequenceTest, ExactNodeCountAndEvenSum) {
  for (const NodeId n : {1000u, 5000u, 10000u}) {
    const auto degrees = AclDegreeSequence(n, 2.246);
    EXPECT_EQ(degrees.size(), n);
    const auto sum =
        std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
    EXPECT_EQ(sum % 2, 0u);
  }
}

TEST(AclDegreeSequenceTest, CountsFollowTheFloorLaw) {
  const NodeId n = 8000;
  const double beta = 2.246;
  const auto degrees = AclDegreeSequence(n, beta);
  // Degree-k node count ratio: count(1)/count(2) should be ~2^beta.
  std::size_t ones = 0, twos = 0;
  for (const auto d : degrees) {
    ones += d == 1;
    twos += d == 2;
  }
  EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(twos),
              std::pow(2.0, beta), 0.4);
}

TEST(AclDegreeSequenceTest, NaturalMaxDegreeIsSmall) {
  // ACL's kmax = e^(alpha/beta) ~ n^(1/beta): far below n - 1.
  const auto degrees = AclDegreeSequence(10000, 2.246);
  EXPECT_LT(degrees.front(), 200u);
  EXPECT_GT(degrees.front(), 20u);
  // Largest first.
  EXPECT_GE(degrees.front(), degrees.back());
}

TEST(AclDegreeSequenceTest, WiresIntoAHeavyTailedGraph) {
  Rng rng(1);
  const auto degrees = AclDegreeSequence(6000, 2.246);
  const Graph g =
      ConnectDegreeSequence(degrees, ConnectMethod::kPlrgMatching, rng);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_TRUE(metrics::LooksHeavyTailed(g));
}

TEST(RewireTest, PreservesEveryDegreeExactly) {
  Rng grng(2), rrng(3);
  MeasuredAsParams p;
  p.n = 1200;
  const Graph g = MeasuredAs(p, grng).graph;
  const Graph rewired = DegreePreservingRewire(g, rrng);
  ASSERT_EQ(rewired.num_nodes(), g.num_nodes());
  ASSERT_EQ(rewired.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(rewired.degree(v), g.degree(v)) << "node " << v;
  }
}

TEST(RewireTest, ActuallyRandomizes) {
  Rng grng(4), rrng(5);
  MeasuredAsParams p;
  p.n = 1200;
  const Graph g = MeasuredAs(p, grng).graph;
  const Graph rewired = DegreePreservingRewire(g, rrng);
  // Count surviving original edges; with 3 swaps/edge nearly all move.
  std::size_t shared = 0;
  for (const graph::Edge& e : g.edges()) {
    shared += rewired.has_edge(e.u, e.v);
  }
  EXPECT_LT(static_cast<double>(shared) /
                static_cast<double>(g.num_edges()),
            0.35);
}

TEST(RewireTest, DestroysTriangleEnrichment) {
  // The AS stand-in's clustering is deliberately planted; rewiring keeps
  // degrees but erases it -- exactly the "local vs global" separation the
  // paper's Section 1 argues with.
  Rng grng(6), rrng(7);
  MeasuredAsParams p;
  p.n = 1500;
  p.triangle_fraction = 0.08;
  const Graph g = MeasuredAs(p, grng).graph;
  const Graph rewired = DegreePreservingRewire(g, rrng);
  EXPECT_LT(metrics::ClusteringCoefficient(rewired),
            0.5 * metrics::ClusteringCoefficient(g));
}

TEST(RewireTest, CompleteGraphIsAFixedPoint) {
  // No legal swap exists in K_n: every candidate edge already present.
  Rng rng(8);
  const Graph g = gen::Complete(8);
  const Graph rewired = DegreePreservingRewire(g, rng);
  EXPECT_EQ(rewired.edges(), g.edges());
}

TEST(RewireTest, TinyGraphsPassThrough) {
  Rng rng(9);
  const Graph single = Graph::FromEdges(2, {{0, 1}});
  EXPECT_EQ(DegreePreservingRewire(single, rng).num_edges(), 1u);
}

}  // namespace
}  // namespace topogen::gen
