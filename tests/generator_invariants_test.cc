// Property sweep: invariants every roster generator must satisfy,
// instantiated per generator with TEST_P. These are the contracts the
// metrics and benches rely on without checking: simple graphs (no
// self-loops/duplicates -- structural, from Graph's construction, but
// verified through the adjacency), determinism under a fixed seed,
// single-component output where promised, and sane degree accounting.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "core/roster.h"
#include "graph/components.h"
#include "metrics/degree.h"

namespace topogen::core {
namespace {

struct GeneratorCase {
  std::string name;
  std::function<Topology(const RosterOptions&)> make;
  bool connected;     // factory promises a connected graph
  bool heavy_tailed;  // degree CCDF should be heavy-tailed
};

RosterOptions Tiny() {
  RosterOptions ro;
  ro.seed = 77;
  ro.as_nodes = 700;
  ro.rl_expansion_ratio = 3.0;
  ro.plrg_nodes = 1500;
  ro.degree_based_nodes = 1200;
  return ro;
}

class GeneratorInvariants : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorInvariants, SimpleGraph) {
  const Topology t = GetParam().make(Tiny());
  const graph::Graph& g = t.graph;
  ASSERT_GT(g.num_nodes(), 0u);
  for (const graph::Edge& e : g.edges()) {
    EXPECT_NE(e.u, e.v) << "self-loop";
    EXPECT_LT(e.u, e.v) << "non-canonical edge";
  }
  // Adjacency is duplicate-free (sorted, strictly increasing).
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]) << "duplicate adjacency at " << v;
    }
  }
}

TEST_P(GeneratorInvariants, DegreeSumMatchesEdges) {
  const Topology t = GetParam().make(Tiny());
  std::size_t degree_sum = 0;
  for (graph::NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    degree_sum += t.graph.degree(v);
  }
  EXPECT_EQ(degree_sum, 2 * t.graph.num_edges());
}

TEST_P(GeneratorInvariants, Deterministic) {
  const Topology a = GetParam().make(Tiny());
  const Topology b = GetParam().make(Tiny());
  EXPECT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

TEST_P(GeneratorInvariants, ConnectivityAsPromised) {
  const GeneratorCase& c = GetParam();
  if (!c.connected) return;
  EXPECT_TRUE(graph::IsConnected(c.make(Tiny()).graph)) << c.name;
}

TEST_P(GeneratorInvariants, TailShapeAsPromised) {
  const GeneratorCase& c = GetParam();
  const Topology t = c.make(Tiny());
  EXPECT_EQ(metrics::LooksHeavyTailed(t.graph), c.heavy_tailed) << c.name;
}

TEST_P(GeneratorInvariants, DegreeRankExponentIsNegative) {
  const Topology t = GetParam().make(Tiny());
  EXPECT_LE(metrics::DegreeRankExponent(t.graph), 0.0);
}

std::vector<GeneratorCase> AllGenerators() {
  return {
      {"Tree", [](const RosterOptions& ro) { return MakeTree(ro); }, true,
       false},
      {"Mesh", [](const RosterOptions& ro) { return MakeMesh(ro); }, true,
       false},
      {"Random", [](const RosterOptions& ro) { return MakeRandom(ro); },
       true, false},
      {"TS", [](const RosterOptions& ro) { return MakeTransitStub(ro); },
       true, false},
      {"Tiers", [](const RosterOptions& ro) { return MakeTiers(ro); }, true,
       false},
      {"Waxman", [](const RosterOptions& ro) { return MakeWaxman(ro); },
       true, false},
      {"PLRG", [](const RosterOptions& ro) { return MakePlrg(ro); }, true,
       true},
      {"BA", [](const RosterOptions& ro) { return MakeBa(ro); }, true, true},
      {"Brite", [](const RosterOptions& ro) { return MakeBrite(ro); }, true,
       true},
      {"BT", [](const RosterOptions& ro) { return MakeBt(ro); }, true, true},
      {"Inet", [](const RosterOptions& ro) { return MakeInet(ro); }, true,
       true},
      {"AS", [](const RosterOptions& ro) { return MakeAs(ro); }, true, true},
      {"RL", [](const RosterOptions& ro) { return MakeRl(ro).topology; },
       true, true},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Roster, GeneratorInvariants, ::testing::ValuesIn(AllGenerators()),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace topogen::core
