#include "graph/trees.h"

#include <gtest/gtest.h>

#include "bfs_testutil.h"
#include "gen/canonical.h"
#include "graph/components.h"

namespace topogen::graph {
namespace {

using testutil::BfsDistances;
using testutil::Ball;

// A parent-vector spanning tree is valid if every node in the component
// reaches the root and every tree edge exists in g.
void CheckSpanningTree(const Graph& g, const SpanningTree& t) {
  std::size_t in_tree = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (t.parent[v] == kInvalidNode) continue;
    ++in_tree;
    if (v != t.root) {
      ASSERT_TRUE(g.has_edge(v, t.parent[v]))
          << "tree edge " << v << "-" << t.parent[v] << " not in graph";
      EXPECT_EQ(t.depth[v], t.depth[t.parent[v]] + 1);
    }
    // Walk to the root; must terminate.
    NodeId cur = v;
    for (Dist steps = 0; cur != t.root; ++steps) {
      ASSERT_LT(steps, g.num_nodes()) << "cycle in parent vector";
      cur = t.parent[cur];
    }
  }
  EXPECT_EQ(in_tree, Ball(g, t.root, kUnreachable - 1).size());
}

TEST(BfsTreeTest, CoversComponent) {
  const Graph g = gen::Mesh(5, 5);
  const SpanningTree t = BfsTree(g, 12);
  CheckSpanningTree(g, t);
  EXPECT_EQ(t.depth[12], 0u);
}

TEST(BfsTreeTest, DepthsAreBfsDistances) {
  const Graph g = gen::Ring(10);
  const SpanningTree t = BfsTree(g, 0);
  const std::vector<Dist> d = BfsDistances(g, 0);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(t.depth[v], d[v]);
}

TEST(TreeDistanceTest, PathTree) {
  const Graph g = gen::Linear(6);
  const SpanningTree t = BfsTree(g, 0);
  EXPECT_EQ(TreeDistance(t, 1, 4), 3u);
  EXPECT_EQ(TreeDistance(t, 5, 5), 0u);
}

TEST(TreeDistanceTest, SiblingsMeetAtParent) {
  const Graph g = gen::KaryTree(2, 2);  // 7 nodes
  const SpanningTree t = BfsTree(g, 0);
  EXPECT_EQ(TreeDistance(t, 1, 2), 2u);   // via root
  EXPECT_EQ(TreeDistance(t, 3, 4), 2u);   // via node 1
  EXPECT_EQ(TreeDistance(t, 3, 6), 4u);   // across the root
}

TEST(TreeDistortionTest, TreeGraphIsExactlyOne) {
  const Graph g = gen::KaryTree(3, 4);
  const SpanningTree t = BfsTree(g, 0);
  EXPECT_DOUBLE_EQ(TreeDistortion(g, t), 1.0);
}

TEST(TreeDistortionTest, CycleBfsTree) {
  // BFS tree of C_n from any node leaves one chord whose tree distance is
  // n-1 (even n: the two "far" edges... compute directly for C_6: chords
  // distances: edges (2,3) and (3,4)?). Simply assert > 1 and the exact
  // average for C_4: tree distances of the 4 edges are 1,1,2(0-?),3.
  const Graph g = gen::Ring(4);
  const SpanningTree t = BfsTree(g, 0);
  // Edges: (0,1)=1, (0,3)=1, (1,2)=1, (2,3)=? 2 and 3 are both children
  // in BFS; dist = depth2+depth3 - 2*depth(lca=0)... = 2+1 = 3.
  EXPECT_NEAR(TreeDistortion(g, t), (1.0 + 1.0 + 1.0 + 3.0) / 4.0, 1e-9);
}

TEST(DecompositionTreeTest, IsValidSpanningTree) {
  Rng rng(3);
  const Graph g = gen::Mesh(8, 8);
  const SpanningTree t = DecompositionTree(g, 0, rng);
  CheckSpanningTree(g, t);
}

TEST(DecompositionTreeTest, WorksOnRandomGraph) {
  Rng grng(5), trng(6);
  const Graph g = gen::ErdosRenyi(300, 0.02, grng);
  const SpanningTree t = DecompositionTree(g, 0, trng);
  CheckSpanningTree(g, t);
}

TEST(BetweennessCenterTest, PathCenterIsMiddle) {
  Rng rng(1);
  const Graph g = gen::Linear(9);
  EXPECT_EQ(ApproxBetweennessCenter(g, 9, rng), 4u);
}

TEST(BetweennessCenterTest, StarCenterIsHub) {
  GraphBuilder b(9);
  for (NodeId i = 1; i < 9; ++i) b.AddEdge(0, i);
  Rng rng(1);
  EXPECT_EQ(ApproxBetweennessCenter(std::move(b).Build(), 9, rng), 0u);
}

TEST(BestDistortionTest, TreeIsOne) {
  Rng rng(2);
  EXPECT_DOUBLE_EQ(BestDistortion(gen::KaryTree(3, 4), rng), 1.0);
}

TEST(BestDistortionTest, MeshIsLogLike) {
  Rng rng(4);
  const double d = BestDistortion(gen::Mesh(12, 12), rng);
  EXPECT_GT(d, 2.0);
  EXPECT_LT(d, 12.0);
}

TEST(BestDistortionTest, CompleteGraphIsSmall) {
  Rng rng(6);
  // Star spanning tree of K_n: adjacent pairs at tree distance <= 2.
  const double d = BestDistortion(gen::Complete(12), rng);
  EXPECT_LE(d, 2.0);
}

TEST(BestDistortionTest, EdgelessIsZero) {
  Rng rng(8);
  EXPECT_DOUBLE_EQ(BestDistortion(Graph::FromEdges(3, {}), rng), 0.0);
}

}  // namespace
}  // namespace topogen::graph
