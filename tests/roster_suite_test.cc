// Integration tests: the paper's headline results, end to end, at reduced
// scale. These are the qualitative claims of Sections 4 and 5:
//
//   Section 4.4 L/H table      -> SignatureTable test
//   "policy does not change it" -> PolicySignature test
//   Figure 2(j-l)               -> DegreeBasedVariants test
//   Section 5.1 groupings       -> HierarchyGroups test
//   Section 5.2 correlation     -> CorrelationOrdering test
#include <gtest/gtest.h>

#include "core/roster.h"
#include "core/suite.h"
#include "hierarchy/link_value.h"

namespace topogen::core {
namespace {

RosterOptions SmallScale() {
  RosterOptions ro;
  ro.seed = 42;
  ro.as_nodes = 2500;
  ro.rl_expansion_ratio = 5.0;
  ro.plrg_nodes = 6000;
  ro.degree_based_nodes = 4000;
  return ro;
}

SuiteOptions FastSuite() {
  SuiteOptions so;
  so.ball.max_centers = 10;
  so.ball.big_ball_centers = 3;
  so.expansion.max_sources = 600;
  return so;
}

std::string SigOf(const Topology& t, bool use_policy = false) {
  SuiteOptions so = FastSuite();
  so.use_policy = use_policy;
  return RunBasicMetrics(t, so).signature.ToString();
}

TEST(RosterSuiteTest, SignatureTable) {
  const RosterOptions ro = SmallScale();
  EXPECT_EQ(SigOf(MakeTree(ro)), "HLL");
  EXPECT_EQ(SigOf(MakeMesh(ro)), "LHH");
  EXPECT_EQ(SigOf(MakeRandom(ro)), "HHH");
  EXPECT_EQ(SigOf(MakeTransitStub(ro)), "HLL");  // "like Tree"
  EXPECT_EQ(SigOf(MakeTiers(ro)), "LHL");        // "no counterpart"
  EXPECT_EQ(SigOf(MakeWaxman(ro)), "HHH");       // "like Random"
  EXPECT_EQ(SigOf(MakePlrg(ro)), "HHL");         // "like complete graph!"
  EXPECT_EQ(SigOf(MakeAs(ro)), "HHL");
  EXPECT_EQ(SigOf(MakeRl(ro).topology), "HHL");
}

TEST(RosterSuiteTest, PolicyDoesNotChangeTheClassification) {
  const RosterOptions ro = SmallScale();
  EXPECT_EQ(SigOf(MakeAs(ro), /*use_policy=*/true), "HHL");
  EXPECT_EQ(SigOf(MakeRl(ro).topology, /*use_policy=*/true), "HHL");
}

TEST(RosterSuiteTest, DegreeBasedVariantsAllMatchMeasured) {
  // Figure 2(j-l): B-A, Brite, BT, Inet all classify with PLRG.
  const RosterOptions ro = SmallScale();
  for (const Topology& t : DegreeBasedRoster(ro)) {
    EXPECT_EQ(SigOf(t), "HHL") << t.name;
  }
}

TEST(RosterSuiteTest, HierarchyGroups) {
  const RosterOptions ro = SmallScale();
  const hierarchy::LinkValueOptions lv{.max_sources = 900, .seed = 7};
  auto class_of = [&](const Topology& t) {
    return hierarchy::ClassifyHierarchy(
        hierarchy::ComputeLinkValues(t.graph, lv));
  };
  // Section 5.1: Tree/TS/Tiers strict; AS/PLRG moderate; Mesh/Random/
  // Waxman loose.
  EXPECT_EQ(class_of(MakeTree(ro)), hierarchy::HierarchyClass::kStrict);
  EXPECT_EQ(class_of(MakeTransitStub(ro)),
            hierarchy::HierarchyClass::kStrict);
  EXPECT_EQ(class_of(MakeTiers(ro)), hierarchy::HierarchyClass::kStrict);
  EXPECT_EQ(class_of(MakeMesh(ro)), hierarchy::HierarchyClass::kLoose);
  EXPECT_EQ(class_of(MakeRandom(ro)), hierarchy::HierarchyClass::kLoose);
  EXPECT_EQ(class_of(MakeWaxman(ro)), hierarchy::HierarchyClass::kLoose);
  EXPECT_EQ(class_of(MakePlrg(ro)), hierarchy::HierarchyClass::kModerate);
  EXPECT_EQ(class_of(MakeAs(ro)), hierarchy::HierarchyClass::kModerate);
}

TEST(RosterSuiteTest, CorrelationOrdering) {
  // Section 5.2 / Figure 5: PLRG's link-value-degree correlation tops the
  // chart; the Tree's is the lowest; the AS graph correlates more
  // strongly than the RL graph (degree-driven vs constructed hierarchy).
  const RosterOptions ro = SmallScale();
  const hierarchy::LinkValueOptions lv{.max_sources = 900, .seed = 9};
  auto corr_of = [&](const Topology& t) {
    return hierarchy::ComputeLinkValues(t.graph, lv).DegreeCorrelation(
        t.graph);
  };
  const double tree = corr_of(MakeTree(ro));
  const double plrg = corr_of(MakePlrg(ro));
  const double as = corr_of(MakeAs(ro));
  EXPECT_GT(plrg, tree);
  EXPECT_GT(as, tree);
}

TEST(RosterSuiteTest, ScaleRobustness) {
  // DESIGN.md's justification for running below paper scale: the
  // signature is invariant under halving the AS model size.
  RosterOptions small = SmallScale();
  small.as_nodes = 1200;
  RosterOptions large = SmallScale();
  large.as_nodes = 2500;
  EXPECT_EQ(SigOf(MakeAs(small)), SigOf(MakeAs(large)));
}

TEST(RosterSuiteTest, RosterGroupingsAreComplete) {
  const RosterOptions ro = SmallScale();
  EXPECT_EQ(CanonicalRoster(ro).size(), 3u);
  EXPECT_EQ(GeneratedRoster(ro).size(), 4u);
  EXPECT_EQ(DegreeBasedRoster(ro).size(), 5u);
}

}  // namespace
}  // namespace topogen::core
