// Graceful-degradation tests for the generation->metrics->store pipeline
// (docs/ROBUSTNESS.md): injected faults at every layer must either be
// retried into success, isolated into a recorded degraded slot, or
// demoted to a cache miss -- never crash the run or change result bytes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/roster.h"
#include "core/session.h"
#include "core/suite.h"
#include "fault/fault.h"
#include "gen/degree_seq.h"
#include "gen/transit_stub.h"
#include "graph/components.h"
#include "graph/rng.h"
#include "obs/obs.h"

namespace topogen::core {
namespace {

namespace fs = std::filesystem;

fs::path FreshDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir;
}

SessionOptions SmallOptions(const std::string& cache_dir = {}) {
  SessionOptions o;
  o.roster.seed = 9;
  o.roster.as_nodes = 400;
  o.roster.rl_expansion_ratio = 3.0;
  o.roster.plrg_nodes = 1000;
  o.roster.degree_based_nodes = 800;
  o.suite.ball.max_centers = 4;
  o.suite.ball.big_ball_centers = 2;
  o.suite.expansion.max_sources = 200;
  o.link_value.max_sources = 120;
  o.cache_dir = cache_dir;
  return o;
}

void ExpectSameSeries(const metrics::Series& a, const metrics::Series& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.x, b.x);  // exact doubles: degraded-path recompute == clean
  EXPECT_EQ(a.y, b.y);
}

void ExpectSameMetrics(const BasicMetrics& a, const BasicMetrics& b) {
  ExpectSameSeries(a.expansion, b.expansion);
  ExpectSameSeries(a.resilience, b.resilience);
  ExpectSameSeries(a.distortion, b.distortion);
  EXPECT_EQ(a.signature, b.signature);
}

class SessionFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::CompiledIn()) {
      GTEST_SKIP() << "fault points compiled out (TOPOGEN_FAULT_POINTS=OFF)";
    }
    fault::Disarm();
  }
  void TearDown() override { fault::Disarm(); }
};

TEST_F(SessionFaultTest, ExhaustedGeneratorDegradesOnlyItsSlot) {
  Session session(SmallOptions());
  // Every validation of Mesh fails: 3 attempts with derived seeds, then
  // the slot degrades. Other roster ids are untouched.
  fault::ArmForTesting("gen.validate@match=Mesh");
  const std::vector<Session::MetricsRequest> requests = {
      {"Tree"}, {"Mesh"}, {"Random"}};
  const auto results = session.MetricsBatch(requests);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_NE(results[0], nullptr);
  EXPECT_EQ(results[1], nullptr);
  EXPECT_NE(results[2], nullptr);

  ASSERT_EQ(session.degraded().size(), 1u);
  const DegradedSlot& slot = session.degraded()[0];
  EXPECT_EQ(slot.kind, "topology");
  EXPECT_EQ(slot.id, "Mesh");
  EXPECT_EQ(slot.error.code, ErrorCode::kRetryExhausted);
  EXPECT_EQ(slot.error.fail_point, "gen.validate");
  EXPECT_EQ(slot.error.attempts, 3);
  EXPECT_GE(Session::TotalDegraded(), 1u);

  // The throwing accessor surfaces the same typed error...
  EXPECT_THROW(session.Metrics("Mesh"), core::Exception);
  EXPECT_EQ(session.TryMetrics("Mesh"), nullptr);
  // ...and a disarmed retry in a fresh session is healthy again.
  fault::Disarm();
  Session healthy(SmallOptions());
  EXPECT_NE(healthy.TryMetrics("Mesh"), nullptr);
}

TEST_F(SessionFaultTest, TransientFailureIsRetriedIntoSuccess) {
  Session session(SmallOptions());
  // Exactly the first validation of Tree fails; the retry draws a derived
  // seed and passes, so the caller never notices.
  fault::ArmForTesting("gen.validate@match=Tree,nth=1");
  const BasicMetrics* m = session.TryMetrics("Tree");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(session.degraded().empty());
  EXPECT_EQ(fault::FiredCount("gen.validate"), 1u);
}

TEST_F(SessionFaultTest, SuiteIsolatesOneFailingJobPerSlot) {
  const Topology tree = MakeTree(SmallOptions().roster);
  const Topology mesh = MakeMesh(SmallOptions().roster);
  const SuiteOptions so = SmallOptions().suite;
  const std::vector<SuiteJob> jobs = {{&tree, so}, {&mesh, so}};

  fault::ArmForTesting("suite.metrics@match=Mesh");
  const auto results = RunBasicMetricsBatchIsolated(jobs);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_FALSE(results[0].value().expansion.x.empty());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].error().code, ErrorCode::kInjected);
  EXPECT_EQ(results[1].error().fail_point, "suite.metrics");
}

TEST_F(SessionFaultTest, PoolBoundaryFailureDegradesTheBatchNotTheRun) {
  Session session(SmallOptions());
  fault::ArmForTesting("parallel.task@nth=1");
  const std::vector<Session::MetricsRequest> requests = {{"Tree"}, {"Mesh"}};
  const auto results = session.MetricsBatch(requests);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], nullptr);
  EXPECT_EQ(results[1], nullptr);
  EXPECT_EQ(session.degraded().size(), 2u);
  for (const DegradedSlot& slot : session.degraded()) {
    EXPECT_EQ(slot.kind, "metrics");
    EXPECT_EQ(slot.error.fail_point, "parallel.task");
  }
  // The Session itself survives: once the fault passes, the same ids
  // compute normally.
  fault::Disarm();
  EXPECT_NE(session.TryMetrics("Tree"), nullptr);
}

TEST_F(SessionFaultTest, TransitStubPatchesConnectivityWhenRetriesExhaust) {
  // Every draw is voted disconnected, exhausting all G(n,p) retries and
  // forcing the deterministic patch pass -- which must still produce a
  // connected graph.
  fault::ArmForTesting("gen.ts.connect");
  graph::Rng rng(7);
  gen::TransitStubParams params;
  params.num_transit_domains = 3;
  params.nodes_per_transit_domain = 4;
  params.stubs_per_transit_node = 1;
  params.nodes_per_stub_domain = 5;
  const graph::Graph g = gen::TransitStub(params, rng);
  EXPECT_GT(fault::FiredCount("gen.ts.connect"), 0u);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_GT(g.num_edges(), 0u);
}

TEST_F(SessionFaultTest, DegreeRealizationRetriesOnDerivedStream) {
  const std::vector<std::uint32_t> degrees(64, 3);
  {
    // First realization check fails; the retry reseeds from a derived
    // stream and succeeds.
    fault::ArmForTesting("gen.realize@nth=1");
    graph::Rng rng(11);
    const graph::Graph g = gen::RealizeDegreeSequence(
        degrees, gen::ConnectMethod::kPlrgMatching, rng, true, "plrg");
    EXPECT_GT(g.num_edges(), 0u);
    EXPECT_EQ(fault::FiredCount("gen.realize"), 1u);
  }
  {
    // Every attempt fails: the typed exhaustion error carries the fail
    // point and attempt count.
    fault::ArmForTesting("gen.realize");
    graph::Rng rng(11);
    try {
      gen::RealizeDegreeSequence(degrees, gen::ConnectMethod::kPlrgMatching,
                                 rng, true, "plrg");
      FAIL() << "expected retry exhaustion";
    } catch (const core::Exception& e) {
      EXPECT_EQ(e.error().code, ErrorCode::kRetryExhausted);
      EXPECT_EQ(e.error().fail_point, "gen.realize");
      EXPECT_GT(e.error().attempts, 1);
    }
  }
}

TEST_F(SessionFaultTest, CorruptCsrArtifactDemotesToRecompute) {
  const fs::path dir = FreshDir("topogen_fault_csr");
  const SessionOptions opts = SmallOptions(dir.string());
  std::vector<graph::Edge> cold_edges;
  {
    Session cold(opts);
    cold_edges = cold.Topology("Tree").graph.edges();
  }
  {
    // The warm load's CSR parse rejects the blob: a miss, a regenerate,
    // and identical edges -- not a crash, not a wrong graph.
    fault::ArmForTesting("graph.csr.parse@nth=1");
    Session warm(opts);
    const core::Topology& tree = warm.Topology("Tree");
    EXPECT_EQ(warm.cache_stats().topology_misses, 1u);
    EXPECT_EQ(warm.cache_stats().topology_hits, 0u);
    EXPECT_EQ(tree.graph.edges(), cold_edges);
  }
  fs::remove_all(dir);
}

TEST_F(SessionFaultTest, StoreFaultsNeverChangeResultBytes) {
  const fs::path dir = FreshDir("topogen_fault_store_bytes");
  const SessionOptions opts = SmallOptions(dir.string());
  BasicMetrics cold;
  {
    Session session(opts);
    cold = session.Metrics("Mesh");
  }
  {
    // Every artifact read is corrupted in flight: everything demotes to a
    // miss and recomputes to the exact same bytes.
    fault::ArmForTesting("store.read.corrupt");
    Session session(opts);
    ExpectSameMetrics(session.Metrics("Mesh"), cold);
    EXPECT_EQ(session.cache_stats().metrics_hits, 0u);
    EXPECT_TRUE(session.degraded().empty());
  }
  const fs::path torn_dir = FreshDir("topogen_fault_store_torn");
  const SessionOptions torn_opts = SmallOptions(torn_dir.string());
  {
    // Every artifact write is torn: the computing run is unaffected (it
    // returns its in-memory results)...
    fault::ArmForTesting("store.write.torn");
    Session session(torn_opts);
    ExpectSameMetrics(session.Metrics("Mesh"), cold);
  }
  fault::Disarm();
  {
    // ...and the next clean run sees only misses from the torn artifacts,
    // recomputing to identical bytes.
    Session session(torn_opts);
    ExpectSameMetrics(session.Metrics("Mesh"), cold);
    EXPECT_EQ(session.cache_stats().metrics_hits, 0u);
  }
  fs::remove_all(dir);
  fs::remove_all(torn_dir);
}

TEST_F(SessionFaultTest, ManifestRecordsDegradedSlots) {
  const fs::path dir = FreshDir("topogen_fault_manifest");
  fs::create_directories(dir);
  ::setenv("TOPOGEN_OUTDIR", dir.string().c_str(), 1);
  obs::Env::ResetForTesting();
  obs::Manifest::ResetForTesting();
  obs::Manifest::AddFigure("f0", "placeholder");  // arm the manifest

  fault::ArmForTesting("gen.validate@match=Mesh");
  Session session(SmallOptions());
  EXPECT_EQ(session.TryMetrics("Mesh"), nullptr);
  fault::Disarm();

  const fs::path manifest = dir / "manifest.json";
  ASSERT_TRUE(obs::Manifest::WriteTo(manifest.string()));
  std::ifstream in(manifest);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"gen.validate\""), std::string::npos);
  EXPECT_NE(json.find("\"retry_exhausted\""), std::string::npos);
  EXPECT_NE(json.find("\"Mesh\""), std::string::npos);
  EXPECT_NE(json.find("\"faults_injected\""), std::string::npos);

  ::unsetenv("TOPOGEN_OUTDIR");
  obs::Env::ResetForTesting();
  obs::Manifest::ResetForTesting();
  fs::remove_all(dir);
}

TEST_F(SessionFaultTest, RetryExhaustionPointForcesDegradation) {
  // gen.retry.exhausted fires at the top of every attempt, so all three
  // attempts die before generating anything.
  Session session(SmallOptions());
  fault::ArmForTesting("gen.retry.exhausted@match=Random");
  EXPECT_EQ(session.TryMetrics("Random"), nullptr);
  ASSERT_EQ(session.degraded().size(), 1u);
  EXPECT_EQ(session.degraded()[0].error.code, ErrorCode::kRetryExhausted);
  EXPECT_EQ(fault::FiredCount("gen.retry.exhausted"), 3u);
}

}  // namespace
}  // namespace topogen::core
