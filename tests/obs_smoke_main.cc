// End-to-end smoke check for the observability stack: runs one real bench
// binary at TOPOGEN_SCALE=small with TOPOGEN_TRACE / TOPOGEN_STATS /
// TOPOGEN_OUTDIR all set, then validates that the three artifacts exist,
// parse, and carry the expected content:
//
//   trace.json    - Chrome trace JSON whose bench.run span covers >= 90%
//                   of the traced wall time
//   stats.txt(.json) - counter dump with nonzero BFS and edge counters
//   manifest.json - roster config + at least one topology entry
//
// Usage: obs_smoke <bench-binary> <scratch-dir>
// Registered in tests/CMakeLists.txt as the `obs_smoke` ctest case.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace fs = std::filesystem;
using topogen::obs::Json;

namespace {

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

void Check(bool ok, const std::string& what) {
  if (!ok) Fail(what);
}

std::optional<Json> ParseFile(const fs::path& p) {
  std::ifstream is(p);
  if (!is.is_open()) {
    Fail("missing artifact: " + p.string());
    return std::nullopt;
  }
  std::stringstream ss;
  ss << is.rdbuf();
  std::optional<Json> doc = Json::Parse(ss.str());
  if (!doc.has_value()) Fail("artifact is not valid JSON: " + p.string());
  return doc;
}

double CounterValue(const Json& stats, const std::string& name) {
  const Json* counters = stats.Find("counters");
  if (counters == nullptr) return -1.0;
  const Json* c = counters->Find(name);
  return c == nullptr || !c->is_number() ? -1.0 : c->AsDouble();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <bench-binary> <scratch-dir>\n", argv[0]);
    return 2;
  }
  const fs::path bench = argv[1];
  const fs::path dir = argv[2];
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);

  const fs::path trace = dir / "trace.json";
  const fs::path stats = dir / "stats.txt";
  const std::string cmd = "TOPOGEN_SCALE=small TOPOGEN_TRACE='" +
                          trace.string() + "' TOPOGEN_STATS='" +
                          stats.string() + "' TOPOGEN_OUTDIR='" +
                          dir.string() + "' '" + bench.string() + "' > '" +
                          (dir / "bench.out").string() + "' 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    Fail("bench run exited nonzero (" + std::to_string(rc) + "): " + cmd);
    return 1;
  }

  // --- trace.json: valid Chrome trace, bench.run covers the run ---
  if (const auto doc = ParseFile(trace)) {
    const Json* events = doc->Find("traceEvents");
    if (events == nullptr || !events->is_array() || events->AsArray().empty()) {
      Fail("trace.json has no traceEvents");
    } else {
      double min_ts = 1e300, max_end = -1e300, run_dur = -1.0;
      std::size_t spans = 0;
      for (const Json& e : events->AsArray()) {
        const Json* ph = e.Find("ph");
        if (ph == nullptr || ph->AsString() != "X") continue;
        ++spans;
        const double ts = e.Find("ts")->AsDouble();
        const double dur = e.Find("dur")->AsDouble();
        min_ts = std::min(min_ts, ts);
        max_end = std::max(max_end, ts + dur);
        if (e.Find("name")->AsString() == "bench.run") run_dur = dur;
      }
      Check(spans > 0, "trace.json has no complete (ph:X) span events");
      Check(run_dur >= 0.0, "trace.json has no bench.run span");
      const double extent = max_end - min_ts;
      if (run_dur >= 0.0 && extent > 0.0 && run_dur < 0.9 * extent) {
        Fail("bench.run covers " + std::to_string(run_dur / extent) +
             " of the trace extent, want >= 0.9");
      }
    }
  }

  // --- stats.txt.json: nonzero work counters ---
  if (const auto doc = ParseFile(fs::path(stats.string() + ".json"))) {
    Check(CounterValue(*doc, "graph.bfs_runs") > 0.0,
          "stats: graph.bfs_runs is zero or missing");
    Check(CounterValue(*doc, "gen.edges_generated") > 0.0,
          "stats: gen.edges_generated is zero or missing");
    Check(CounterValue(*doc, "obs.spans") > 0.0,
          "stats: obs.spans is zero or missing");
  }
  Check(fs::exists(stats), "missing text stats dump: " + stats.string());

  // --- manifest.json: roster config + topology inventory ---
  if (const auto doc = ParseFile(dir / "manifest.json")) {
    const Json* roster = doc->Find("roster");
    if (roster == nullptr) {
      Fail("manifest.json has no roster object");
    } else {
      Check(roster->Find("seed") != nullptr, "manifest roster has no seed");
      Check(roster->Find("rl_expansion_ratio") != nullptr,
            "manifest roster has no rl_expansion_ratio");
    }
    const Json* topologies = doc->Find("topologies");
    Check(topologies != nullptr && topologies->is_array() &&
              !topologies->AsArray().empty(),
          "manifest.json lists no topologies");
    const Json* scale = doc->Find("scale");
    Check(scale != nullptr && scale->AsString() == "small",
          "manifest.json scale is not 'small'");
  }

  if (g_failures == 0) {
    std::printf("obs smoke OK: trace + stats + manifest all valid\n");
    return 0;
  }
  return 1;
}
